package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.P(5) != 0 || c.Quantile(0.5) != 0 || c.Len() != 0 {
		t.Error("empty CDF returned nonzero values")
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.5}, {4, 1}, {9, 1},
	}
	for _, tc := range tests {
		if got := c.P(tc.x); got != tc.want {
			t.Errorf("P(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4", got)
	}
}

func TestCDFDuplicates(t *testing.T) {
	c := NewCDF([]float64{2, 2, 2, 5})
	if got := c.P(2); got != 0.75 {
		t.Errorf("P(2) = %v, want 0.75", got)
	}
	if got := c.P(1.99); got != 0 {
		t.Errorf("P(1.99) = %v, want 0", got)
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	c := NewCDF(in)
	in[0] = 100
	if got := c.P(3); got != 1 {
		t.Errorf("CDF affected by caller mutation: P(3) = %v", got)
	}
}

// Property: P is monotone and Quantile inverts P approximately.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		c := NewCDF(raw)
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		prev := -1.0
		for _, x := range sorted {
			p := c.P(x)
			if p < prev {
				return false
			}
			prev = p
		}
		return c.P(sorted[len(sorted)-1]) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogHistogramBuckets(t *testing.T) {
	h := NewLogHistogram()
	// 5 samples in [1,10), 3 in [10,100), 2 in [100,1000).
	for _, v := range []float64{1, 2, 5, 9, 9.9, 10, 50, 99, 100, 999} {
		h.Add(v)
	}
	buckets := h.Buckets()
	want := map[int]int{1: 5, 2: 3, 3: 2}
	if len(buckets) != len(want) {
		t.Fatalf("buckets = %+v, want 3 decades", buckets)
	}
	for _, b := range buckets {
		if want[b.UpperExp] != b.Count {
			t.Errorf("bucket <10^%d count = %d, want %d", b.UpperExp, b.Count, want[b.UpperExp])
		}
	}
	if h.Total() != 10 {
		t.Errorf("Total = %d, want 10", h.Total())
	}
}

func TestLogHistogramFractionAbove(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []float64{5, 50, 500, 5000} {
		h.Add(v)
	}
	if got := h.FractionAbove(1); got != 0.75 {
		t.Errorf("FractionAbove(1) = %v, want 0.75", got)
	}
	if got := h.FractionAbove(4); got != 0 {
		t.Errorf("FractionAbove(4) = %v, want 0", got)
	}
}

func TestLogHistogramNonPositive(t *testing.T) {
	h := NewLogHistogram()
	h.Add(0)
	h.Add(-3)
	h.Add(1)
	if h.Total() != 3 {
		t.Errorf("Total = %d, want 3", h.Total())
	}
	// Non-positive samples are below every decade.
	if got := h.FractionAbove(-100000); got < 0.3 || got > 0.34 {
		t.Errorf("FractionAbove(min) = %v, want 1/3", got)
	}
}

func TestCDFQuantileAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = rng.Float64() * 100
	}
	c := NewCDF(samples)
	sort.Float64s(samples)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		want := samples[int(p*1000)-1+1-1] // nearest rank: ceil(p*n)-1
		if got := c.Quantile(p); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", p, got, want)
		}
	}
}
