package avl

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestEmpty(t *testing.T) {
	tr := New(intLess)
	if tr.Len() != 0 {
		t.Errorf("Len = %d, want 0", tr.Len())
	}
	if _, ok := tr.Min(); ok {
		t.Error("Min on empty tree reported ok")
	}
	if _, ok := tr.DeleteMin(); ok {
		t.Error("DeleteMin on empty tree reported ok")
	}
	if tr.Delete(1) {
		t.Error("Delete on empty tree reported true")
	}
	if tr.Height() != 0 {
		t.Errorf("Height = %d, want 0", tr.Height())
	}
}

func TestInsertDeleteContains(t *testing.T) {
	tr := New(intLess)
	for _, k := range []int{10, 5, 15, 3, 7, 12, 20} {
		tr.Insert(k)
	}
	if tr.Len() != 7 {
		t.Fatalf("Len = %d, want 7", tr.Len())
	}
	if !tr.Contains(7) || tr.Contains(8) {
		t.Error("Contains gave wrong answers")
	}
	if !tr.Delete(10) { // root with two children
		t.Fatal("Delete(10) failed")
	}
	if tr.Contains(10) {
		t.Error("Contains(10) after delete")
	}
	if tr.Len() != 6 {
		t.Errorf("Len = %d, want 6", tr.Len())
	}
}

func TestInsertDuplicateReplaces(t *testing.T) {
	tr := New(intLess)
	tr.Insert(5)
	tr.Insert(5)
	if tr.Len() != 1 {
		t.Errorf("Len = %d after duplicate insert, want 1", tr.Len())
	}
}

func TestDeleteMinOrder(t *testing.T) {
	tr := New(intLess)
	keys := []int{9, 4, 6, 1, 8, 2, 7, 3, 5, 0}
	for _, k := range keys {
		tr.Insert(k)
	}
	for i := 0; i < len(keys); i++ {
		k, ok := tr.DeleteMin()
		if !ok {
			t.Fatalf("tree drained early at %d", i)
		}
		if k != i {
			t.Fatalf("DeleteMin = %d, want %d", k, i)
		}
	}
}

// checkInvariants verifies AVL balance and BST ordering for every node.
func checkInvariants(t *testing.T, tr *Tree[int]) {
	t.Helper()
	var walk func(n *node[int], lo, hi int) int8
	walk = func(n *node[int], lo, hi int) int8 {
		if n == nil {
			return 0
		}
		if n.key <= lo || n.key >= hi {
			t.Fatalf("BST order violated at key %d (bounds %d,%d)", n.key, lo, hi)
		}
		lh := walk(n.left, lo, n.key)
		rh := walk(n.right, n.key, hi)
		if d := lh - rh; d < -1 || d > 1 {
			t.Fatalf("AVL balance violated at key %d: %d vs %d", n.key, lh, rh)
		}
		h := lh
		if rh > h {
			h = rh
		}
		h++
		if n.height != h {
			t.Fatalf("stale height at key %d: stored %d, actual %d", n.key, n.height, h)
		}
		return h
	}
	walk(tr.root, math.MinInt, math.MaxInt)
}

func TestInvariantsUnderRandomOps(t *testing.T) {
	tr := New(intLess)
	rng := rand.New(rand.NewSource(77))
	model := map[int]bool{}
	for op := 0; op < 10000; op++ {
		k := rng.Intn(1000)
		if rng.Intn(2) == 0 {
			tr.Insert(k)
			model[k] = true
		} else {
			got := tr.Delete(k)
			if got != model[k] {
				t.Fatalf("op %d: Delete(%d) = %v, model %v", op, k, got, model[k])
			}
			delete(model, k)
		}
		if tr.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, model %d", op, tr.Len(), len(model))
		}
	}
	checkInvariants(t, tr)
}

func TestHeightLogarithmic(t *testing.T) {
	tr := New(intLess)
	const n = 1 << 14
	for i := 0; i < n; i++ {
		tr.Insert(i) // adversarial ascending order
	}
	// AVL height bound: 1.44*log2(n+2).
	maxH := int(1.45*math.Log2(float64(n+2))) + 1
	if tr.Height() > maxH {
		t.Errorf("Height = %d for %d sequential inserts, want <= %d", tr.Height(), n, maxH)
	}
	checkInvariants(t, tr)
}

func TestAscendSortedProperty(t *testing.T) {
	f := func(keys []int16) bool {
		tr := New(intLess)
		set := map[int]bool{}
		for _, k := range keys {
			tr.Insert(int(k))
			set[int(k)] = true
		}
		want := make([]int, 0, len(set))
		for k := range set {
			want = append(want, k)
		}
		sort.Ints(want)
		var got []int
		tr.Ascend(func(k int) bool { got = append(got, k); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New(intLess)
	for i := 0; i < 100; i++ {
		tr.Insert(i)
	}
	visited := 0
	tr.Ascend(func(int) bool {
		visited++
		return visited < 10
	})
	if visited != 10 {
		t.Errorf("visited %d keys, want 10", visited)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New(intLess)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Int())
	}
}

func BenchmarkDeleteMin(b *testing.B) {
	tr := New(intLess)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Int())
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.DeleteMin()
	}
}
