// Package avl implements a balanced search tree used as the "BST" baseline
// that Fig 13(a) of the WOHA paper compares the Double Skip List against.
//
// It is a textbook AVL tree: worst-case O(log n) insert, delete, and min, with
// no O(1) head-deletion fast path — exactly the property the paper's DSL
// design exploits to win on head-heavy workloads.
package avl

import "repro/internal/ordered"

// Tree is an ordered set of unique keys. Construct with New; the zero value
// is not usable.
type Tree[K any] struct {
	root   *node[K]
	less   ordered.Less[K]
	length int
	// free chains recycled nodes through their right pointers, so the
	// delete+reinsert churn of a steady-state queue stops allocating.
	free *node[K]
}

type node[K any] struct {
	key         K
	left, right *node[K]
	height      int8
}

var _ ordered.Set[int] = (*Tree[int])(nil)

// New returns an empty tree ordered by less.
func New[K any](less ordered.Less[K]) *Tree[K] {
	return &Tree[K]{less: less}
}

// Len returns the number of keys in the tree.
func (t *Tree[K]) Len() int { return t.length }

// alloc returns a fresh leaf holding key, recycling a freed node when one
// exists.
func (t *Tree[K]) alloc(key K) *node[K] {
	if n := t.free; n != nil {
		t.free = n.right
		n.key, n.left, n.right, n.height = key, nil, nil, 1
		return n
	}
	return &node[K]{key: key, height: 1}
}

// recycle pushes a detached node onto the free list.
func (t *Tree[K]) recycle(n *node[K]) {
	var zero K
	n.key, n.left = zero, nil
	n.right = t.free
	t.free = n
}

// Move removes old and inserts new as one operation, reporting whether old
// was present. An AVL deletion has no stable node to splice (interior
// removals copy the successor key), so Move is delete+insert over the free
// list — allocation-free at steady state, still O(log n).
func (t *Tree[K]) Move(old, new K) bool {
	if !t.Delete(old) {
		return false
	}
	t.Insert(new)
	return true
}

// Insert adds key to the tree. Inserting a key equal to an existing one
// (under less) replaces it.
func (t *Tree[K]) Insert(key K) {
	var added bool
	t.root, added = t.insert(t.root, key)
	if added {
		t.length++
	}
}

func (t *Tree[K]) insert(n *node[K], key K) (*node[K], bool) {
	if n == nil {
		return t.alloc(key), true
	}
	var added bool
	switch {
	case t.less(key, n.key):
		n.left, added = t.insert(n.left, key)
	case t.less(n.key, key):
		n.right, added = t.insert(n.right, key)
	default:
		n.key = key
		return n, false
	}
	return rebalance(n), added
}

// Delete removes key from the tree, reporting whether it was present.
func (t *Tree[K]) Delete(key K) bool {
	var removed bool
	t.root, removed = t.remove(t.root, key)
	if removed {
		t.length--
	}
	return removed
}

func (t *Tree[K]) remove(n *node[K], key K) (*node[K], bool) {
	if n == nil {
		return nil, false
	}
	var removed bool
	switch {
	case t.less(key, n.key):
		n.left, removed = t.remove(n.left, key)
	case t.less(n.key, key):
		n.right, removed = t.remove(n.right, key)
	default:
		removed = true
		if n.left == nil {
			r := n.right
			t.recycle(n)
			return r, true
		}
		if n.right == nil {
			l := n.left
			t.recycle(n)
			return l, true
		}
		// Replace with in-order successor.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.key = succ.key
		n.right, _ = t.remove(n.right, succ.key)
	}
	if n == nil {
		return nil, removed
	}
	return rebalance(n), removed
}

// Min returns the smallest key. ok is false when the tree is empty.
func (t *Tree[K]) Min() (key K, ok bool) {
	n := t.root
	if n == nil {
		var zero K
		return zero, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, true
}

// DeleteMin removes and returns the smallest key. Unlike the skip list this
// costs a full O(log n) descent plus rebalancing.
func (t *Tree[K]) DeleteMin() (key K, ok bool) {
	k, ok := t.Min()
	if !ok {
		var zero K
		return zero, false
	}
	t.Delete(k)
	return k, true
}

// Contains reports whether key is in the tree.
func (t *Tree[K]) Contains(key K) bool {
	n := t.root
	for n != nil {
		switch {
		case t.less(key, n.key):
			n = n.left
		case t.less(n.key, key):
			n = n.right
		default:
			return true
		}
	}
	return false
}

// Ascend calls fn on every key in ascending order until fn returns false.
func (t *Tree[K]) Ascend(fn func(key K) bool) {
	ascend(t.root, fn)
}

func ascend[K any](n *node[K], fn func(K) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key) {
		return false
	}
	return ascend(n.right, fn)
}

// Height returns the height of the tree (0 for empty). Exposed for
// balance-invariant tests.
func (t *Tree[K]) Height() int { return int(height(t.root)) }

func height[K any](n *node[K]) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func update[K any](n *node[K]) {
	lh, rh := height(n.left), height(n.right)
	if lh > rh {
		n.height = lh + 1
	} else {
		n.height = rh + 1
	}
}

func balanceFactor[K any](n *node[K]) int8 {
	return height(n.left) - height(n.right)
}

func rotateRight[K any](n *node[K]) *node[K] {
	l := n.left
	n.left = l.right
	l.right = n
	update(n)
	update(l)
	return l
}

func rotateLeft[K any](n *node[K]) *node[K] {
	r := n.right
	n.right = r.left
	r.left = n
	update(n)
	update(r)
	return r
}

func rebalance[K any](n *node[K]) *node[K] {
	update(n)
	switch bf := balanceFactor(n); {
	case bf > 1:
		if balanceFactor(n.left) < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if balanceFactor(n.right) > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}
