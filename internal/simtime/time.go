// Package simtime provides virtual time primitives for discrete-event
// simulation: a Time instant type measured from a simulation epoch, and a
// deterministic event queue ordered by firing time with FIFO tie-breaking.
//
// All WOHA simulators (the client-side scheduling-plan generator and the
// Hadoop control-plane cluster simulator) share these primitives so that runs
// are reproducible bit-for-bit: no component reads the wall clock.
package simtime

import (
	"fmt"
	"time"
)

// Time is an instant in virtual time, expressed as the duration elapsed since
// the simulation epoch (Time(0)). The zero value is the epoch itself.
type Time time.Duration

// Common instants.
const (
	// Epoch is the origin of virtual time.
	Epoch Time = 0
	// MaxTime is the largest representable instant. It is useful as an
	// "infinitely far in the future" sentinel for deadlines and timers.
	MaxTime Time = Time(1<<63 - 1)
)

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Duration returns the duration elapsed between the epoch and t.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t as a floating-point number of seconds since the epoch.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// String formats t as a duration since the epoch, e.g. "1m30s".
func (t Time) String() string {
	if t == MaxTime {
		return "+inf"
	}
	return time.Duration(t).String()
}

// MinTime returns the earlier of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxOf returns the later of a and b.
func MaxOf(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// FromSeconds converts a floating-point number of seconds since the epoch to
// a Time. It is intended for test and configuration convenience.
func FromSeconds(s float64) Time {
	return Time(time.Duration(s * float64(time.Second)))
}

// GoString implements fmt.GoStringer for readable test failures.
func (t Time) GoString() string { return fmt.Sprintf("simtime.Time(%s)", t) }
