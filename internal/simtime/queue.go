package simtime

// Queue is a deterministic future-event list: a priority queue of payloads
// ordered by firing time, with FIFO ordering among events that share the same
// instant. The zero value is an empty queue ready to use.
//
// Determinism matters because both the plan generator (Algorithm 1 of the
// WOHA paper) and the cluster simulator schedule many events at identical
// instants; heap ties broken by pointer order or map iteration would make
// runs irreproducible.
//
// The heap is implemented by hand rather than over container/heap: the
// standard interface boxes every pushed event into an `any`, which costs one
// allocation per event — the dominant cost of an Algorithm 1 probe, run
// O(log slots) times per admitted workflow.
type Queue[T any] struct {
	h []event[T]
	// seq is a monotonically increasing stamp assigned at Push time so that
	// events pushed earlier pop earlier among equal firing times. Normal
	// pushes live in the upper seq band (normalBand set); PushFront draws
	// from fseq in the lower band, so front events precede every normal
	// event sharing their instant while staying FIFO among themselves.
	seq  uint64
	fseq uint64
}

// normalBand tags the seq stamps of ordinary pushes. Every normal stamp is
// larger than every front stamp, so among events at one instant the front
// band drains first; within each band FIFO order is preserved.
const normalBand = uint64(1) << 63

// Push schedules payload v to fire at instant at.
func (q *Queue[T]) Push(at Time, v T) {
	q.seq++
	q.h = append(q.h, event[T]{at: at, seq: normalBand | q.seq, payload: v})
	q.up(len(q.h) - 1)
}

// PushFront schedules payload v to fire at instant at, ahead of every
// already- or later-Pushed event at the same instant (repeated PushFronts at
// one instant keep their own FIFO order). The federation layer uses it to
// inject workflow arrivals into a running simulator with the same
// same-instant ordering a pre-run Submit would have produced: pre-run
// arrivals carry the lowest seq stamps of their instant, so a live-submitted
// arrival must also sort before the completions and heartbeats already
// queued there.
func (q *Queue[T]) PushFront(at Time, v T) {
	q.fseq++
	q.h = append(q.h, event[T]{at: at, seq: q.fseq, payload: v})
	q.up(len(q.h) - 1)
}

// Pop removes and returns the earliest event. ok is false when the queue is
// empty, in which case at and v are zero values.
func (q *Queue[T]) Pop() (at Time, v T, ok bool) {
	if len(q.h) == 0 {
		var zero T
		return 0, zero, false
	}
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = event[T]{} // release payload for GC
	q.h = q.h[:last]
	if last > 0 {
		q.down(0)
	}
	return top.at, top.payload, true
}

// Peek returns the firing time of the earliest event without removing it.
// ok is false when the queue is empty.
func (q *Queue[T]) Peek() (at Time, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// DrainInstant pops every event scheduled at the earliest pending instant,
// appending their payloads to *out in the exact order repeated Pop calls
// would have produced (FIFO among the shared instant), and returns that
// instant with the number of payloads appended. n is 0 when the queue is
// empty. Events pushed while the caller processes the batch — even at the
// same instant — are NOT part of it; they surface on the next call, which is
// precisely when a Pop-per-event loop would have reached them (their seq
// stamps are newer than everything drained here).
//
// Batching exists for the simulators' grid-aligned workloads (heartbeat
// ticks, synchronized wave completions): the heap is popped once per instant
// instead of once per event, so the sift-down traffic for k coincident
// events touches a heap that shrinks k times between time advances.
func (q *Queue[T]) DrainInstant(out *[]T) (at Time, n int) {
	if len(q.h) == 0 {
		return 0, 0
	}
	at = q.h[0].at
	for len(q.h) > 0 && q.h[0].at == at {
		*out = append(*out, q.h[0].payload)
		n++
		last := len(q.h) - 1
		q.h[0] = q.h[last]
		q.h[last] = event[T]{}
		q.h = q.h[:last]
		if last > 0 {
			q.down(0)
		}
	}
	return at, n
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.h) }

// Reset empties the queue while keeping its backing storage, so a pooled
// simulator can reuse one queue across runs without re-allocating. Payloads
// still queued are zeroed to release anything they reference.
func (q *Queue[T]) Reset() {
	for i := range q.h {
		q.h[i] = event[T]{}
	}
	q.h = q.h[:0]
	q.seq = 0
	q.fseq = 0
}

func (q *Queue[T]) less(i, j int) bool {
	if q.h[i].at != q.h[j].at {
		return q.h[i].at < q.h[j].at
	}
	return q.h[i].seq < q.h[j].seq
}

// heapArity is the fan-out of the implicit d-ary heap. Four children halve
// the sift-down depth of the binary layout, trading cheap extra comparisons
// (the children sit adjacent in one or two cache lines) for the dependent
// loads that dominate Pop on deep heaps. The (at, seq) order is total, so
// pop order is identical at any arity.
const heapArity = 4

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / heapArity
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.h)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		smallest := i
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if q.less(c, smallest) {
				smallest = c
			}
		}
		if smallest == i {
			return
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
}

type event[T any] struct {
	at      Time
	seq     uint64
	payload T
}
