package simtime

import "container/heap"

// Queue is a deterministic future-event list: a priority queue of payloads
// ordered by firing time, with FIFO ordering among events that share the same
// instant. The zero value is an empty queue ready to use.
//
// Determinism matters because both the plan generator (Algorithm 1 of the
// WOHA paper) and the cluster simulator schedule many events at identical
// instants; heap ties broken by pointer order or map iteration would make
// runs irreproducible.
type Queue[T any] struct {
	h eventHeap[T]
	// seq is a monotonically increasing stamp assigned at Push time so that
	// events pushed earlier pop earlier among equal firing times.
	seq uint64
}

// Push schedules payload v to fire at instant at.
func (q *Queue[T]) Push(at Time, v T) {
	q.seq++
	heap.Push(&q.h, event[T]{at: at, seq: q.seq, payload: v})
}

// Pop removes and returns the earliest event. ok is false when the queue is
// empty, in which case at and v are zero values.
func (q *Queue[T]) Pop() (at Time, v T, ok bool) {
	if len(q.h) == 0 {
		var zero T
		return 0, zero, false
	}
	e := heap.Pop(&q.h).(event[T])
	return e.at, e.payload, true
}

// Peek returns the firing time of the earliest event without removing it.
// ok is false when the queue is empty.
func (q *Queue[T]) Peek() (at Time, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.h) }

type event[T any] struct {
	at      Time
	seq     uint64
	payload T
}

type eventHeap[T any] []event[T]

func (h eventHeap[T]) Len() int { return len(h) }

func (h eventHeap[T]) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap[T]) Push(x any) { *h = append(*h, x.(event[T])) }

func (h *eventHeap[T]) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event[T]{} // release payload for GC
	*h = old[:n-1]
	return e
}
