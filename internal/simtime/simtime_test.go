package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Epoch
	t1 := t0.Add(90 * time.Second)
	if got, want := t1.Sub(t0), 90*time.Second; got != want {
		t.Errorf("Sub = %v, want %v", got, want)
	}
	if !t0.Before(t1) {
		t.Errorf("Before(%v, %v) = false, want true", t0, t1)
	}
	if !t1.After(t0) {
		t.Errorf("After(%v, %v) = false, want true", t1, t0)
	}
	if got, want := t1.String(), "1m30s"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got, want := MaxTime.String(), "+inf"; got != want {
		t.Errorf("MaxTime.String = %q, want %q", got, want)
	}
}

func TestTimeSeconds(t *testing.T) {
	tt := FromSeconds(2.5)
	if got := tt.Seconds(); got != 2.5 {
		t.Errorf("Seconds = %v, want 2.5", got)
	}
	if got := tt.Duration(); got != 2500*time.Millisecond {
		t.Errorf("Duration = %v, want 2.5s", got)
	}
}

func TestMinMaxTime(t *testing.T) {
	a, b := Time(5), Time(9)
	if got := MinTime(a, b); got != a {
		t.Errorf("MinTime = %v, want %v", got, a)
	}
	if got := MinTime(b, a); got != a {
		t.Errorf("MinTime = %v, want %v", got, a)
	}
	if got := MaxOf(a, b); got != b {
		t.Errorf("MaxOf = %v, want %v", got, b)
	}
	if got := MaxOf(b, a); got != b {
		t.Errorf("MaxOf = %v, want %v", got, b)
	}
}

func TestQueueEmpty(t *testing.T) {
	var q Queue[int]
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue reported ok")
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty queue reported ok")
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d, want 0", q.Len())
	}
}

func TestQueueOrdersByTime(t *testing.T) {
	var q Queue[string]
	q.Push(30, "c")
	q.Push(10, "a")
	q.Push(20, "b")

	var got []string
	for {
		_, v, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pop %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestQueueFIFOAmongTies(t *testing.T) {
	var q Queue[int]
	const n = 100
	for i := 0; i < n; i++ {
		q.Push(42, i)
	}
	for i := 0; i < n; i++ {
		at, v, ok := q.Pop()
		if !ok {
			t.Fatalf("queue exhausted after %d pops", i)
		}
		if at != 42 {
			t.Fatalf("pop %d at = %v, want 42", i, at)
		}
		if v != i {
			t.Fatalf("pop %d = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

// TestQueuePushFrontPrecedesTies pins the band scheme PushFront relies on: a
// front event fires before every normal event sharing its instant — even
// normal events pushed earlier — while front events keep FIFO order among
// themselves and time order still dominates everything.
func TestQueuePushFrontPrecedesTies(t *testing.T) {
	var q Queue[int]
	q.Push(10, 100)      // earlier instant: still pops first
	q.Push(42, 0)        // normal pushes at the shared instant...
	q.Push(42, 1)        // ...pushed before the front events
	q.PushFront(42, 200) // front events jump the normal band
	q.PushFront(42, 201)
	q.Push(42, 2)
	q.Push(50, 300)
	want := []int{100, 200, 201, 0, 1, 2, 300}
	for i, w := range want {
		_, v, ok := q.Pop()
		if !ok {
			t.Fatalf("queue exhausted after %d pops", i)
		}
		if v != w {
			t.Fatalf("pop %d = %d, want %d", i, v, w)
		}
	}
	// Reset must rewind the front band too, or a pooled queue's next run
	// would order same-instant front events against stale stamps.
	q.Push(7, 1)
	q.Reset()
	if q.seq != 0 || q.fseq != 0 {
		t.Fatalf("Reset left seq=%d fseq=%d, want 0 0", q.seq, q.fseq)
	}
}

func TestQueuePeekMatchesPop(t *testing.T) {
	var q Queue[int]
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		q.Push(Time(rng.Int63n(500)), i)
	}
	for q.Len() > 0 {
		peekAt, ok := q.Peek()
		if !ok {
			t.Fatal("Peek failed on non-empty queue")
		}
		popAt, _, ok := q.Pop()
		if !ok {
			t.Fatal("Pop failed on non-empty queue")
		}
		if peekAt != popAt {
			t.Fatalf("Peek = %v but Pop = %v", peekAt, popAt)
		}
	}
}

// TestQueueSortsArbitraryInput is a property test: popping every event from
// the queue must yield a non-decreasing sequence of firing times, regardless
// of push order.
func TestQueueSortsArbitraryInput(t *testing.T) {
	f := func(times []int64) bool {
		var q Queue[int64]
		for _, v := range times {
			q.Push(Time(v), v)
		}
		count := 0
		first := true
		var prev Time
		for {
			at, v, ok := q.Pop()
			if !ok {
				break
			}
			if !first && at < prev {
				return false
			}
			first = false
			if Time(v) != at {
				return false
			}
			prev = at
			count++
		}
		return count == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQueueMatchesSortReference drains a large random workload and compares
// against sort.Slice on the same data.
func TestQueueMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	times := make([]int64, n)
	var q Queue[int]
	for i := range times {
		times[i] = rng.Int63n(1000)
		q.Push(Time(times[i]), i)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for i := 0; i < n; i++ {
		at, _, ok := q.Pop()
		if !ok {
			t.Fatalf("queue exhausted at %d", i)
		}
		if int64(at) != times[i] {
			t.Fatalf("pop %d = %d, want %d", i, at, times[i])
		}
	}
}

func TestQueueInterleavedPushPop(t *testing.T) {
	var q Queue[int]
	q.Push(5, 5)
	q.Push(1, 1)
	if at, v, _ := q.Pop(); at != 1 || v != 1 {
		t.Fatalf("got (%v,%d), want (1,1)", at, v)
	}
	q.Push(3, 3)
	q.Push(2, 2)
	wantOrder := []int{2, 3, 5}
	for _, w := range wantOrder {
		_, v, ok := q.Pop()
		if !ok || v != w {
			t.Fatalf("got %d ok=%v, want %d", v, ok, w)
		}
	}
}

// TestQueueDrainInstantMatchesPop checks that DrainInstant produces exactly
// the batches repeated Pop calls would, over randomized workloads with heavy
// instant collisions, including events pushed mid-stream at already-drained
// and still-pending instants.
func TestQueueDrainInstantMatchesPop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var byPop, byDrain Queue[int]
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(10)) // few instants → many ties
			byPop.Push(at, i)
			byDrain.Push(at, i)
		}
		var got []int
		var gotAts []Time
		batch := make([]int, 0, n)
		for byDrain.Len() > 0 {
			batch = batch[:0]
			at, k := byDrain.DrainInstant(&batch)
			if k != len(batch) {
				t.Fatalf("trial %d: DrainInstant n=%d, appended %d", trial, k, len(batch))
			}
			got = append(got, batch...)
			for range batch {
				gotAts = append(gotAts, at)
			}
		}
		for i := range got {
			at, v, ok := byPop.Pop()
			if !ok {
				t.Fatalf("trial %d: reference queue exhausted at %d", trial, i)
			}
			if v != got[i] || at != gotAts[i] {
				t.Fatalf("trial %d: event %d = (%v, %d), Pop gives (%v, %d)",
					trial, i, gotAts[i], got[i], at, v)
			}
		}
		if _, _, ok := byPop.Pop(); ok {
			t.Fatalf("trial %d: DrainInstant dropped events", trial)
		}
	}
}

// TestQueueDrainInstantExcludesMidBatchPushes pins the batching contract:
// an event pushed at the instant being processed joins the NEXT batch, the
// same position a Pop-per-event loop gives it.
func TestQueueDrainInstantExcludesMidBatchPushes(t *testing.T) {
	var q Queue[string]
	q.Push(5, "a")
	q.Push(5, "b")
	var batch []string
	at, n := q.DrainInstant(&batch)
	if at != 5 || n != 2 {
		t.Fatalf("first drain = (%v, %d), want (5, 2)", at, n)
	}
	q.Push(5, "c") // pushed "while processing" the instant-5 batch
	q.Push(6, "d")
	batch = batch[:0]
	if at, n = q.DrainInstant(&batch); at != 5 || n != 1 || batch[0] != "c" {
		t.Fatalf("second drain = (%v, %d, %v), want (5, 1, [c])", at, n, batch)
	}
	batch = batch[:0]
	if at, n = q.DrainInstant(&batch); at != 6 || n != 1 || batch[0] != "d" {
		t.Fatalf("third drain = (%v, %d, %v), want (6, 1, [d])", at, n, batch)
	}
	if at, n = q.DrainInstant(&batch); n != 0 {
		t.Fatalf("empty drain = (%v, %d), want n=0", at, n)
	}
}
