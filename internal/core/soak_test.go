package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// TestSoakTenThousandWorkflows pushes the paper's scalability claim through
// the full simulator: 10,000 concurrently queued workflows scheduled by the
// Double Skip List on a large cluster, with exact task conservation.
func TestSoakTenThousandWorkflows(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const nWorkflows = 10000
	cfg := cluster.Config{Nodes: 500, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	pol := NewScheduler(Options{Seed: 13, PolicyName: "LPF"})
	sim, err := cluster.New(cfg, pol, nil)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	totalTasks := 0
	reqTemplate := []plan.Req{
		{TTD: 40 * time.Minute, Cum: 2},
		{TTD: 20 * time.Minute, Cum: 4},
	}
	for i := 0; i < nWorkflows; i++ {
		maps := 1 + rng.Intn(4)
		reduces := rng.Intn(2)
		w := workflow.NewBuilder(name(i)).
			Job("j", maps, reduces,
				time.Duration(10+rng.Intn(50))*time.Second,
				time.Duration(20+rng.Intn(120))*time.Second).
			MustBuild(
				simtime.Epoch.Add(time.Duration(rng.Intn(600))*time.Second),
				simtime.Epoch.Add(time.Duration(3600+rng.Intn(36000))*time.Second))
		totalTasks += w.TotalTasks()
		// Hand-rolled plans keep the test fast; shapes mirror real ones.
		p := &plan.Plan{
			Policy:     "LPF",
			Ranks:      []int{0},
			Reqs:       reqTemplate,
			Cap:        2,
			TotalTasks: w.TotalTasks(),
			Feasible:   true,
		}
		if err := sim.Submit(w, p); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if res.TasksStarted != totalTasks {
		t.Errorf("started %d tasks, want %d", res.TasksStarted, totalTasks)
	}
	if pol.QueueLen() != 0 {
		t.Errorf("queue not drained: %d", pol.QueueLen())
	}
	t.Logf("10k workflows, %d tasks, simulated makespan %v, wall %v",
		totalTasks, res.Makespan, elapsed)
	if elapsed > 2*time.Minute {
		t.Errorf("soak took %v; DSL scheduling may have regressed", elapsed)
	}
}

func name(i int) string {
	const digits = "0123456789"
	buf := []byte("wf-00000")
	for k := len(buf) - 1; i > 0; k-- {
		buf[k] = digits[i%10]
		i /= 10
	}
	return string(buf)
}
