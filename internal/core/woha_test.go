package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

func twoJob(t *testing.T, deadline time.Duration) *workflow.Workflow {
	t.Helper()
	return workflow.NewBuilder("w").
		Job("a", 4, 2, 10*time.Second, 20*time.Second).
		Job("b", 2, 1, 10*time.Second, 20*time.Second, "a").
		MustBuild(0, simtime.Epoch.Add(deadline))
}

func TestQueueKindString(t *testing.T) {
	tests := []struct {
		k    QueueKind
		want string
	}{
		{QueueDSL, "DSL"},
		{QueueBST, "BST"},
		{QueueNaive, "Naive"},
		{QueueKind(9), "QueueKind(9)"},
	}
	for _, tc := range tests {
		if got := tc.k.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.k, got, tc.want)
		}
	}
}

func TestSchedulerNameVariants(t *testing.T) {
	if got := NewScheduler(Options{}).Name(); got != "WOHA" {
		t.Errorf("Name = %q, want WOHA", got)
	}
	if got := NewScheduler(Options{PolicyName: "HLF"}).Name(); got != "WOHA-HLF" {
		t.Errorf("Name = %q, want WOHA-HLF", got)
	}
}

func TestClientPreparePlan(t *testing.T) {
	c := &Client{Policy: priority.LPF{}, ClusterSlots: 20}
	w := twoJob(t, time.Hour)
	p, err := c.PreparePlan(w)
	if err != nil {
		t.Fatal(err)
	}
	if p.Policy != "LPF" || p.TotalTasks != w.TotalTasks() {
		t.Errorf("plan = %+v", p)
	}
	if !p.Feasible {
		t.Error("generous deadline produced infeasible plan")
	}
}

func TestClientErrors(t *testing.T) {
	c := &Client{ClusterSlots: 20}
	if _, err := c.PreparePlan(twoJob(t, time.Hour)); err == nil || !strings.Contains(err.Error(), "no priority policy") {
		t.Errorf("nil policy: err = %v", err)
	}
	c.Policy = priority.HLF{}
	bad := &workflow.Workflow{Name: "bad"}
	if _, err := c.PreparePlan(bad); err == nil || !strings.Contains(err.Error(), "validating") {
		t.Errorf("invalid workflow: err = %v", err)
	}
}

func TestClientSubmitEndToEnd(t *testing.T) {
	cfg := cluster.Config{Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	pol := NewScheduler(Options{Seed: 3})
	sim, err := cluster.New(cfg, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{Policy: priority.LPF{}, ClusterSlots: cfg.TotalSlots()}
	if err := c.Submit(sim, twoJob(t, time.Hour)); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Workflows[0].Met {
		t.Error("workflow missed a generous deadline")
	}
}

func TestQueueLenTracksLifecycle(t *testing.T) {
	cfg := cluster.Config{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	pol := NewScheduler(Options{Seed: 3})
	sim, err := cluster.New(cfg, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Submit(twoJob(t, time.Hour), nil); err != nil {
		t.Fatal(err)
	}
	if pol.QueueLen() != 0 {
		t.Errorf("QueueLen before Run = %d, want 0", pol.QueueLen())
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if pol.QueueLen() != 0 {
		t.Errorf("QueueLen after Run = %d, want 0 (workflow completed)", pol.QueueLen())
	}
}

// TestBackendsProduceIdenticalSchedules runs the same contended workload
// under the DSL, BST, and naive backends; because all three implement the
// same Algorithm 2 ordering with total tie-breaking, the resulting
// schedules must be identical.
func TestBackendsProduceIdenticalSchedules(t *testing.T) {
	cfg := cluster.Config{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	var finishes [][]simtime.Time
	for _, kind := range []QueueKind{QueueDSL, QueueBST, QueueNaive} {
		pol := NewScheduler(Options{Queue: kind, Seed: 5})
		sim, err := cluster.New(cfg, pol, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			w := workflow.NewBuilder("w"+string(rune('0'+i))).
				Job("a", 3+i, 2, 10*time.Second, 15*time.Second).
				Job("b", 2, 1, 10*time.Second, 15*time.Second, "a").
				MustBuild(simtime.FromSeconds(float64(i)), simtime.FromSeconds(600+float64(100*i)))
			p, err := plan.GenerateCapped(w, cfg.TotalSlots(), priority.LPF{})
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.Submit(w, p); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		var fs []simtime.Time
		for _, w := range res.Workflows {
			fs = append(fs, w.Finish)
		}
		finishes = append(finishes, fs)
	}
	for k := 1; k < len(finishes); k++ {
		for i := range finishes[0] {
			if finishes[k][i] != finishes[0][i] {
				t.Errorf("backend %d workflow %d finish %v != DSL %v", k, i, finishes[k][i], finishes[0][i])
			}
		}
	}
}

// TestOverdueDemotionSavesAchievableWorkflows constructs a zombie scenario:
// a large workflow whose deadline has already passed competes with a small
// achievable one. Under the paper-literal ordering the zombie starves the
// small workflow past its deadline; with demotion (the default) the small
// workflow is served first and meets it.
func TestOverdueDemotionSavesAchievableWorkflows(t *testing.T) {
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	mk := func() []*workflow.Workflow {
		zombie := workflow.NewBuilder("zombie").
			Job("wide", 40, 10, 10*time.Second, 10*time.Second).
			MustBuild(0, simtime.FromSeconds(1)) // hopeless deadline
		small := workflow.NewBuilder("small").
			Job("j", 2, 1, 10*time.Second, 10*time.Second).
			MustBuild(simtime.FromSeconds(5), simtime.FromSeconds(45))
		return []*workflow.Workflow{zombie, small}
	}
	run := func(serveOverdueFirst bool) *cluster.Result {
		pol := NewScheduler(Options{Seed: 1, ServeOverdueFirst: serveOverdueFirst})
		sim, err := cluster.New(cfg, pol, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range mk() {
			p, err := plan.GenerateCapped(w, cfg.TotalSlots(), priority.HLF{})
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.Submit(w, p); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	literal := run(true)
	if literal.Workflows[1].Met {
		t.Error("paper-literal ordering met the small deadline; zombie scenario too weak")
	}
	demoted := run(false)
	if !demoted.Workflows[1].Met {
		t.Errorf("demotion failed to save the small workflow (finish %v, deadline %v)",
			demoted.Workflows[1].Finish, demoted.Workflows[1].Deadline)
	}
	// The zombie must still complete (best effort), just later.
	if demoted.Workflows[0].Finish == 0 {
		t.Error("zombie never finished under demotion")
	}
}
