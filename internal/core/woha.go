// Package core implements the paper's primary contribution: WOHA's
// progress-based workflow scheduling. It glues together the client side —
// scheduling-plan generation with a resource cap (internal/plan) — and the
// master side — the Double Skip List priority queue (internal/dsl) driving a
// cluster.Policy that, on every idle slot, picks the workflow lagging
// furthest behind its progress requirements and that workflow's
// highest-ranked runnable job.
package core

import (
	"fmt"
	mbits "math/bits"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dsl"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// QueueKind selects the inter-workflow queue backend (the Fig 13(a)
// comparison).
type QueueKind int

// Queue backends.
const (
	// QueueDSL is the paper's Double Skip List.
	QueueDSL QueueKind = iota
	// QueueBST is Algorithm 2 over balanced search trees.
	QueueBST
	// QueueNaive recomputes every workflow's priority per decision.
	QueueNaive
	// QueueDet is Algorithm 2 over deterministic 1-2-3 skip lists
	// (worst-case O(log n) per operation).
	QueueDet
)

func (k QueueKind) String() string {
	switch k {
	case QueueDSL:
		return "DSL"
	case QueueBST:
		return "BST"
	case QueueNaive:
		return "Naive"
	case QueueDet:
		return "Det"
	default:
		return fmt.Sprintf("QueueKind(%d)", int(k))
	}
}

func (k QueueKind) newQueue(seed int64) dsl.Queue {
	switch k {
	case QueueBST:
		return dsl.NewBST()
	case QueueNaive:
		return dsl.NewNaive()
	case QueueDet:
		return dsl.NewDeterministic()
	default:
		return dsl.New(seed)
	}
}

// Options configures a WOHA scheduler.
type Options struct {
	// Queue selects the priority-queue backend; the default is the DSL.
	Queue QueueKind
	// Seed drives the DSL's skip-list PRNG.
	Seed int64
	// Strict disables work conservation: when the most-lagging workflow
	// has no task matching the idle slot type, the slot stays idle instead
	// of being offered to the next workflow. Exists for the ablation
	// benchmark; the paper's scheduler is work-conserving (Strict=false).
	Strict bool
	// ServeOverdueFirst keeps the paper's literal priority formula for
	// workflows whose deadlines have passed: their lag stays maximal
	// (total - rho), so they are served before everything else until they
	// finish. The default (false) demotes overdue workflows below every
	// still-achievable one, which prevents a single large miss from
	// cascading; see dsl.NewEntryDemoteOverdue.
	ServeOverdueFirst bool
	// NormalizedLag expresses each workflow's priority as its lag divided
	// by its planned total (parts per million) rather than an absolute task
	// count. The paper's formula is absolute, which lets task-rich
	// workflows outbid small ones under contention; normalization is the
	// natural "different scheduling objectives under the WOHA framework"
	// extension the paper's conclusion invites. Ablated in
	// BenchmarkAblationNormalizedLag.
	NormalizedLag bool
	// PolicyName annotates the scheduler name, e.g. "LPF" → "WOHA-LPF".
	// Plans normally carry the policy name already; this is a display
	// override for workflows scheduled without plans.
	PolicyName string
	// Obs attaches runtime observability to the scheduler's inter-workflow
	// queue (insert/delete/head-hit counts, lag recomputations, labeled by
	// the queue backend). nil disables instrumentation (the default).
	Obs *obs.Obs
}

// Scheduler is the WOHA progress-based workflow scheduler: a cluster.Policy
// that follows each workflow's scheduling plan.
type Scheduler struct {
	opts  Options
	queue dsl.Queue
	// byID maps a workflow's arrival index to its runtime state. Arrival
	// indices are dense, so the lookup tables are plain slices — the
	// Ascend callback hits them once per considered workflow, and map
	// hashing was the scheduler's dominant cost on the Fig 8 corpus.
	byID []*cluster.WorkflowState
	// ranks maps a workflow's arrival index to its plan's job ranking.
	ranks [][]int
	// sched maps a workflow's arrival index to its rank-ordered
	// schedulable-job index (see wfSched).
	sched []wfSched
	// schedulable counts tasks currently startable per slot type, so a
	// slot offer with no startable work anywhere returns without scanning
	// the queue — at tens of thousands of queued workflows the scan is
	// the dominant cost.
	schedulable [2]int
	// skips counts workflows passed over during the queue descent because
	// their index showed nothing startable for the slot type (nil-safe).
	skips *obs.Counter
	// ntVisit is the Ascend callback, bound once at construction; ntSlot,
	// ntFound, and ntJob thread NextTask's argument and result through it.
	// A literal closure in NextTask would heap-allocate per decision —
	// the scheduler's only steady-state allocation once the queue and
	// index stopped allocating.
	ntVisit func(*dsl.Entry) bool
	ntSlot  cluster.SlotType
	ntFound *cluster.WorkflowState
	ntJob   workflow.JobID
}

// wfSched is the per-workflow schedulable-job index, maintained purely from
// policy callbacks (JobActivated / ReducesReady / TaskStarted /
// TaskRequeued), which every control plane fires after mutating the job
// counters. Jobs are arranged by plan rank so the old O(jobs) bestJob scan
// becomes a find-first-set over a bitset of rank positions.
type wfSched struct {
	// order maps rank position to job ID, sorted by (plan rank, job ID) —
	// ranks need not be a permutation; pos is the inverse mapping.
	order []int32
	pos   []int32
	// bits[st] marks rank positions whose job can start a task of type st;
	// cnt[st] counts them.
	bits [2][]uint64
	cnt  [2]int32
}

// firstJob returns the schedulable job with the smallest (rank, ID); the
// caller guarantees cnt[st] > 0.
func (sc *wfSched) firstJob(st cluster.SlotType) workflow.JobID {
	for w, word := range sc.bits[st] {
		if word != 0 {
			p := w<<6 | mbits.TrailingZeros64(word)
			return workflow.JobID(sc.order[p])
		}
	}
	panic("core: schedulable count positive but bitset empty")
}

var (
	_ cluster.ReducePhasePolicy = (*Scheduler)(nil)
	_ cluster.RequeuePolicy     = (*Scheduler)(nil)
)

var _ cluster.Policy = (*Scheduler)(nil)

// NewScheduler returns a WOHA scheduler with the given options.
func NewScheduler(opts Options) *Scheduler {
	q := opts.Queue.newQueue(opts.Seed)
	q.Instrument(opts.Obs.NewQueueStats(opts.Queue.String()))
	s := &Scheduler{
		opts:  opts,
		queue: q,
		skips: opts.Obs.SchedIndexSkips(),
	}
	s.ntVisit = s.visit
	return s
}

// track records ws and its plan ranking under its arrival index, growing
// the dense lookup tables as needed, and builds the workflow's rank-ordered
// schedulable-job index. All jobs start non-schedulable from the policy's
// point of view: JobActivated callbacks follow for root jobs.
func (s *Scheduler) track(ws *cluster.WorkflowState, ranks []int) {
	for ws.Index >= len(s.byID) {
		s.byID = append(s.byID, nil)
		s.ranks = append(s.ranks, nil)
		s.sched = append(s.sched, wfSched{})
	}
	s.byID[ws.Index] = ws
	s.ranks[ws.Index] = ranks
	sc := &s.sched[ws.Index]
	n := len(ws.Jobs)
	sc.order = make([]int32, n)
	for i := range sc.order {
		sc.order[i] = int32(i)
	}
	sort.Slice(sc.order, func(a, b int) bool {
		ja, jb := sc.order[a], sc.order[b]
		if ranks[ja] != ranks[jb] {
			return ranks[ja] < ranks[jb]
		}
		return ja < jb
	})
	sc.pos = make([]int32, n)
	for p, j := range sc.order {
		sc.pos[j] = int32(p)
	}
	words := (n + 63) / 64
	sc.bits[0] = make([]uint64, words)
	sc.bits[1] = make([]uint64, words)
	sc.cnt = [2]int32{}
}

// refreshJob reconciles one job's bits in the workflow's schedulable index
// with its current counters. Called from the policy callbacks, which every
// control plane fires after mutating the counters, so the index is exact at
// every decision point.
func (s *Scheduler) refreshJob(ws *cluster.WorkflowState, job workflow.JobID) {
	sc := &s.sched[ws.Index]
	js := &ws.Jobs[job]
	p := uint(sc.pos[job])
	w, bit := p>>6, uint64(1)<<(p&63)
	for st := cluster.MapSlot; st <= cluster.ReduceSlot; st++ {
		has := sc.bits[st][w]&bit != 0
		if want := js.Schedulable(st); want != has {
			if want {
				sc.bits[st][w] |= bit
				sc.cnt[st]++
			} else {
				sc.bits[st][w] &^= bit
				sc.cnt[st]--
			}
		}
	}
}

// Name implements cluster.Policy. It includes the intra-workflow policy
// annotation when one is set, matching the paper's "WOHA-LPF" style labels.
func (s *Scheduler) Name() string {
	if s.opts.PolicyName != "" {
		return "WOHA-" + s.opts.PolicyName
	}
	return "WOHA"
}

// WorkflowAdded implements cluster.Policy: the workflow joins the DSL with
// the progress requirements from its plan. A workflow submitted without a
// plan is scheduled with an empty requirement list (it accrues priority only
// as it is starved relative to others' requirements) and job-ID ranking.
func (s *Scheduler) WorkflowAdded(ws *cluster.WorkflowState, now simtime.Time) {
	var reqs []plan.Req
	if ws.Plan != nil {
		reqs = ws.Plan.Reqs
		s.track(ws, ws.Plan.Ranks)
	} else {
		ids := make([]int, len(ws.Jobs))
		for i := range ids {
			ids[i] = i
		}
		s.track(ws, ids)
	}
	entry := dsl.NewEntryDemoteOverdue(ws.Index, ws.Spec.Deadline, reqs)
	if s.opts.ServeOverdueFirst {
		entry = dsl.NewEntry(ws.Index, ws.Spec.Deadline, reqs)
	}
	if s.opts.NormalizedLag {
		entry.Normalized()
	}
	s.queue.Add(entry, now)
}

// JobActivated implements cluster.Policy: the job's map tasks (or its
// reduces, for a map-less job) become startable.
func (s *Scheduler) JobActivated(ws *cluster.WorkflowState, job workflow.JobID, _ simtime.Time) {
	spec := &ws.Spec.Jobs[job]
	if spec.Maps > 0 {
		s.schedulable[cluster.MapSlot] += spec.Maps
	} else {
		s.schedulable[cluster.ReduceSlot] += spec.Reduces
	}
	s.refreshJob(ws, job)
}

// ReducesReady implements cluster.ReducePhasePolicy: the job's reduce tasks
// become startable once its map phase completes.
func (s *Scheduler) ReducesReady(ws *cluster.WorkflowState, job workflow.JobID, _ simtime.Time) {
	s.schedulable[cluster.ReduceSlot] += ws.Jobs[job].PendingReduces
	s.refreshJob(ws, job)
}

// visit is the queue-descent callback (see ntVisit).
func (s *Scheduler) visit(e *dsl.Entry) bool {
	sc := &s.sched[e.ID]
	if sc.cnt[s.ntSlot] == 0 {
		// Nothing startable here; without the index this cost a scan of
		// every job in the workflow.
		s.skips.Inc()
		// Strict mode: consider only the single most-lagging workflow.
		return !s.opts.Strict
	}
	s.ntFound, s.ntJob = s.byID[e.ID], sc.firstJob(s.ntSlot)
	return false
}

// NextTask implements cluster.Policy: pick the workflow lagging furthest
// behind its progress requirement, then its highest-ranked runnable job.
func (s *Scheduler) NextTask(now simtime.Time, st cluster.SlotType) (*cluster.WorkflowState, workflow.JobID, bool) {
	if s.schedulable[st] == 0 {
		return nil, 0, false
	}
	s.ntSlot, s.ntFound = st, nil
	s.queue.Ascend(now, s.ntVisit)
	found := s.ntFound
	if found == nil {
		return nil, 0, false
	}
	s.ntFound = nil // don't pin the workflow past its completion
	return found, s.ntJob, true
}

// TaskStarted implements cluster.Policy: advance the workflow's true
// progress ρ in the queue (Algorithm 2 lines 20-23).
func (s *Scheduler) TaskStarted(ws *cluster.WorkflowState, job workflow.JobID, st cluster.SlotType, now simtime.Time) {
	s.schedulable[st]--
	s.refreshJob(ws, job)
	s.queue.Scheduled(ws.Index, now)
}

// TaskRequeued implements cluster.RequeuePolicy: a task lost to a node
// failure becomes startable again and the workflow's true progress rolls
// back by one, so its lag reflects the lost work.
func (s *Scheduler) TaskRequeued(ws *cluster.WorkflowState, job workflow.JobID, st cluster.SlotType, now simtime.Time) {
	s.schedulable[st]++
	s.refreshJob(ws, job)
	s.queue.Unscheduled(ws.Index, now)
}

// WorkflowCompleted implements cluster.Policy.
func (s *Scheduler) WorkflowCompleted(ws *cluster.WorkflowState, now simtime.Time) {
	s.queue.Remove(ws.Index, now)
	s.byID[ws.Index] = nil
	s.ranks[ws.Index] = nil
	s.sched[ws.Index] = wfSched{}
}

// QueueLen reports the number of workflows currently queued (for tests and
// scalability experiments).
func (s *Scheduler) QueueLen() int { return s.queue.Len() }

// Client bundles the client-side submission pipeline of Fig 1: it validates
// a workflow, generates the resource-capped scheduling plan locally, and
// hands both to the JobTracker (simulator). It corresponds to the WOHA
// client's Configuration Validator + Scheduling Plan Generator + Coordinator.
type Client struct {
	// Policy is the intra-workflow job prioritization algorithm.
	Policy priority.Policy
	// ClusterSlots is the total slot count reported by the JobTracker.
	ClusterSlots int
}

// PreparePlan validates w and generates its resource-capped scheduling plan.
func (c *Client) PreparePlan(w *workflow.Workflow) (*plan.Plan, error) {
	if c.Policy == nil {
		return nil, fmt.Errorf("core: client has no priority policy")
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("core: validating workflow: %w", err)
	}
	p, err := plan.GenerateCapped(w, c.ClusterSlots, c.Policy)
	if err != nil {
		return nil, fmt.Errorf("core: generating plan for %q: %w", w.Name, err)
	}
	return p, nil
}

// Submit prepares w's plan and submits both to the simulator.
func (c *Client) Submit(sim *cluster.Simulator, w *workflow.Workflow) error {
	p, err := c.PreparePlan(w)
	if err != nil {
		return err
	}
	if err := sim.Submit(w, p); err != nil {
		return fmt.Errorf("core: submitting %q: %w", w.Name, err)
	}
	return nil
}
