// Package core implements the paper's primary contribution: WOHA's
// progress-based workflow scheduling. It glues together the client side —
// scheduling-plan generation with a resource cap (internal/plan) — and the
// master side — the Double Skip List priority queue (internal/dsl) driving a
// cluster.Policy that, on every idle slot, picks the workflow lagging
// furthest behind its progress requirements and that workflow's
// highest-ranked runnable job.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dsl"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// QueueKind selects the inter-workflow queue backend (the Fig 13(a)
// comparison).
type QueueKind int

// Queue backends.
const (
	// QueueDSL is the paper's Double Skip List.
	QueueDSL QueueKind = iota
	// QueueBST is Algorithm 2 over balanced search trees.
	QueueBST
	// QueueNaive recomputes every workflow's priority per decision.
	QueueNaive
	// QueueDet is Algorithm 2 over deterministic 1-2-3 skip lists
	// (worst-case O(log n) per operation).
	QueueDet
)

func (k QueueKind) String() string {
	switch k {
	case QueueDSL:
		return "DSL"
	case QueueBST:
		return "BST"
	case QueueNaive:
		return "Naive"
	case QueueDet:
		return "Det"
	default:
		return fmt.Sprintf("QueueKind(%d)", int(k))
	}
}

func (k QueueKind) newQueue(seed int64) dsl.Queue {
	switch k {
	case QueueBST:
		return dsl.NewBST()
	case QueueNaive:
		return dsl.NewNaive()
	case QueueDet:
		return dsl.NewDeterministic()
	default:
		return dsl.New(seed)
	}
}

// Options configures a WOHA scheduler.
type Options struct {
	// Queue selects the priority-queue backend; the default is the DSL.
	Queue QueueKind
	// Seed drives the DSL's skip-list PRNG.
	Seed int64
	// Strict disables work conservation: when the most-lagging workflow
	// has no task matching the idle slot type, the slot stays idle instead
	// of being offered to the next workflow. Exists for the ablation
	// benchmark; the paper's scheduler is work-conserving (Strict=false).
	Strict bool
	// ServeOverdueFirst keeps the paper's literal priority formula for
	// workflows whose deadlines have passed: their lag stays maximal
	// (total - rho), so they are served before everything else until they
	// finish. The default (false) demotes overdue workflows below every
	// still-achievable one, which prevents a single large miss from
	// cascading; see dsl.NewEntryDemoteOverdue.
	ServeOverdueFirst bool
	// NormalizedLag expresses each workflow's priority as its lag divided
	// by its planned total (parts per million) rather than an absolute task
	// count. The paper's formula is absolute, which lets task-rich
	// workflows outbid small ones under contention; normalization is the
	// natural "different scheduling objectives under the WOHA framework"
	// extension the paper's conclusion invites. Ablated in
	// BenchmarkAblationNormalizedLag.
	NormalizedLag bool
	// PolicyName annotates the scheduler name, e.g. "LPF" → "WOHA-LPF".
	// Plans normally carry the policy name already; this is a display
	// override for workflows scheduled without plans.
	PolicyName string
	// Obs attaches runtime observability to the scheduler's inter-workflow
	// queue (insert/delete/head-hit counts, lag recomputations, labeled by
	// the queue backend). nil disables instrumentation (the default).
	Obs *obs.Obs
}

// Scheduler is the WOHA progress-based workflow scheduler: a cluster.Policy
// that follows each workflow's scheduling plan.
type Scheduler struct {
	opts  Options
	queue dsl.Queue
	// byID maps a workflow's arrival index to its runtime state. Arrival
	// indices are dense, so both lookup tables are plain slices — bestJob
	// and the Ascend callback hit them once per considered workflow, and
	// map hashing was the scheduler's dominant cost on the Fig 8 corpus.
	byID []*cluster.WorkflowState
	// ranks maps a workflow's arrival index to its plan's job ranking.
	ranks [][]int
	// schedulable counts tasks currently startable per slot type, so a
	// slot offer with no startable work anywhere returns without scanning
	// the queue — at tens of thousands of queued workflows the scan is
	// the dominant cost.
	schedulable [2]int
}

var (
	_ cluster.ReducePhasePolicy = (*Scheduler)(nil)
	_ cluster.RequeuePolicy     = (*Scheduler)(nil)
)

var _ cluster.Policy = (*Scheduler)(nil)

// NewScheduler returns a WOHA scheduler with the given options.
func NewScheduler(opts Options) *Scheduler {
	q := opts.Queue.newQueue(opts.Seed)
	q.Instrument(opts.Obs.NewQueueStats(opts.Queue.String()))
	return &Scheduler{
		opts:  opts,
		queue: q,
	}
}

// track records ws and its plan ranking under its arrival index, growing
// the dense lookup tables as needed.
func (s *Scheduler) track(ws *cluster.WorkflowState, ranks []int) {
	for ws.Index >= len(s.byID) {
		s.byID = append(s.byID, nil)
		s.ranks = append(s.ranks, nil)
	}
	s.byID[ws.Index] = ws
	s.ranks[ws.Index] = ranks
}

// Name implements cluster.Policy. It includes the intra-workflow policy
// annotation when one is set, matching the paper's "WOHA-LPF" style labels.
func (s *Scheduler) Name() string {
	if s.opts.PolicyName != "" {
		return "WOHA-" + s.opts.PolicyName
	}
	return "WOHA"
}

// WorkflowAdded implements cluster.Policy: the workflow joins the DSL with
// the progress requirements from its plan. A workflow submitted without a
// plan is scheduled with an empty requirement list (it accrues priority only
// as it is starved relative to others' requirements) and job-ID ranking.
func (s *Scheduler) WorkflowAdded(ws *cluster.WorkflowState, now simtime.Time) {
	var reqs []plan.Req
	if ws.Plan != nil {
		reqs = ws.Plan.Reqs
		s.track(ws, ws.Plan.Ranks)
	} else {
		ids := make([]int, len(ws.Jobs))
		for i := range ids {
			ids[i] = i
		}
		s.track(ws, ids)
	}
	entry := dsl.NewEntryDemoteOverdue(ws.Index, ws.Spec.Deadline, reqs)
	if s.opts.ServeOverdueFirst {
		entry = dsl.NewEntry(ws.Index, ws.Spec.Deadline, reqs)
	}
	if s.opts.NormalizedLag {
		entry.Normalized()
	}
	s.queue.Add(entry, now)
}

// JobActivated implements cluster.Policy: the job's map tasks (or its
// reduces, for a map-less job) become startable.
func (s *Scheduler) JobActivated(ws *cluster.WorkflowState, job workflow.JobID, _ simtime.Time) {
	spec := &ws.Spec.Jobs[job]
	if spec.Maps > 0 {
		s.schedulable[cluster.MapSlot] += spec.Maps
	} else {
		s.schedulable[cluster.ReduceSlot] += spec.Reduces
	}
}

// ReducesReady implements cluster.ReducePhasePolicy: the job's reduce tasks
// become startable once its map phase completes.
func (s *Scheduler) ReducesReady(ws *cluster.WorkflowState, job workflow.JobID, _ simtime.Time) {
	s.schedulable[cluster.ReduceSlot] += ws.Jobs[job].PendingReduces
}

// NextTask implements cluster.Policy: pick the workflow lagging furthest
// behind its progress requirement, then its highest-ranked runnable job.
func (s *Scheduler) NextTask(now simtime.Time, st cluster.SlotType) (*cluster.WorkflowState, workflow.JobID, bool) {
	if s.schedulable[st] == 0 {
		return nil, 0, false
	}
	var (
		found    *cluster.WorkflowState
		foundJob workflow.JobID
	)
	s.queue.Ascend(now, func(e *dsl.Entry) bool {
		ws := s.byID[e.ID]
		if job, ok := s.bestJob(ws, st); ok {
			found, foundJob = ws, job
			return false
		}
		// Strict mode: consider only the single most-lagging workflow.
		return !s.opts.Strict
	})
	if found == nil {
		return nil, 0, false
	}
	return found, foundJob, true
}

// bestJob returns ws's schedulable job with the smallest plan rank.
func (s *Scheduler) bestJob(ws *cluster.WorkflowState, st cluster.SlotType) (workflow.JobID, bool) {
	ranks := s.ranks[ws.Index]
	best := -1
	for i := range ws.Jobs {
		if !ws.Jobs[i].Schedulable(st) {
			continue
		}
		if best < 0 || ranks[i] < ranks[best] {
			best = i
		}
	}
	if best < 0 {
		return 0, false
	}
	return workflow.JobID(best), true
}

// TaskStarted implements cluster.Policy: advance the workflow's true
// progress ρ in the queue (Algorithm 2 lines 20-23).
func (s *Scheduler) TaskStarted(ws *cluster.WorkflowState, _ workflow.JobID, st cluster.SlotType, now simtime.Time) {
	s.schedulable[st]--
	s.queue.Scheduled(ws.Index, now)
}

// TaskRequeued implements cluster.RequeuePolicy: a task lost to a node
// failure becomes startable again and the workflow's true progress rolls
// back by one, so its lag reflects the lost work.
func (s *Scheduler) TaskRequeued(ws *cluster.WorkflowState, _ workflow.JobID, st cluster.SlotType, now simtime.Time) {
	s.schedulable[st]++
	s.queue.Unscheduled(ws.Index, now)
}

// WorkflowCompleted implements cluster.Policy.
func (s *Scheduler) WorkflowCompleted(ws *cluster.WorkflowState, _ simtime.Time) {
	s.queue.Remove(ws.Index)
	s.byID[ws.Index] = nil
	s.ranks[ws.Index] = nil
}

// QueueLen reports the number of workflows currently queued (for tests and
// scalability experiments).
func (s *Scheduler) QueueLen() int { return s.queue.Len() }

// Client bundles the client-side submission pipeline of Fig 1: it validates
// a workflow, generates the resource-capped scheduling plan locally, and
// hands both to the JobTracker (simulator). It corresponds to the WOHA
// client's Configuration Validator + Scheduling Plan Generator + Coordinator.
type Client struct {
	// Policy is the intra-workflow job prioritization algorithm.
	Policy priority.Policy
	// ClusterSlots is the total slot count reported by the JobTracker.
	ClusterSlots int
}

// PreparePlan validates w and generates its resource-capped scheduling plan.
func (c *Client) PreparePlan(w *workflow.Workflow) (*plan.Plan, error) {
	if c.Policy == nil {
		return nil, fmt.Errorf("core: client has no priority policy")
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("core: validating workflow: %w", err)
	}
	p, err := plan.GenerateCapped(w, c.ClusterSlots, c.Policy)
	if err != nil {
		return nil, fmt.Errorf("core: generating plan for %q: %w", w.Name, err)
	}
	return p, nil
}

// Submit prepares w's plan and submits both to the simulator.
func (c *Client) Submit(sim *cluster.Simulator, w *workflow.Workflow) error {
	p, err := c.PreparePlan(w)
	if err != nil {
		return err
	}
	if err := sim.Submit(w, p); err != nil {
		return fmt.Errorf("core: submitting %q: %w", w.Name, err)
	}
	return nil
}
