package woha

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/priority"
	"repro/internal/runner"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// Re-exported model types. The internal packages own the implementations;
// these aliases are the supported public surface.
type (
	// Workflow is a deadline-constrained DAG of Map-Reduce jobs.
	Workflow = workflow.Workflow
	// Job is one Map-Reduce job ("wjob") inside a workflow.
	Job = workflow.Job
	// JobID indexes a job within its workflow.
	JobID = workflow.JobID
	// Builder constructs workflows fluently; see NewWorkflow.
	Builder = workflow.Builder

	// Plan is a WOHA scheduling plan: job ranks plus the progress
	// requirement list F(ttd).
	Plan = plan.Plan
	// PlanReq is one progress requirement entry.
	PlanReq = plan.Req
	// PlanCaps is a typed slot-capacity pair (map and reduce pools), used by
	// AdmissionConfig.Cluster and the typed planner entry points.
	PlanCaps = plan.Caps

	// ClusterConfig describes the simulated Hadoop-1 cluster.
	ClusterConfig = cluster.Config
	// Failure is one scripted TaskTracker outage (see ClusterConfig.Failures).
	Failure = cluster.Failure
	// Result aggregates a simulation run.
	Result = cluster.Result
	// WorkflowResult records one workflow's outcome.
	WorkflowResult = cluster.WorkflowResult
	// Policy is the pluggable WorkflowScheduler interface; implement it to
	// bring your own scheduler, as the paper's framework intends.
	Policy = cluster.Policy
	// Observer receives task lifecycle callbacks.
	Observer = cluster.Observer
	// SlotType distinguishes map and reduce slots.
	SlotType = cluster.SlotType
	// WorkflowState is the runtime state a Policy sees.
	WorkflowState = cluster.WorkflowState

	// Time is an instant in virtual time.
	Time = simtime.Time

	// Timeline records per-workflow slot allocation over time.
	Timeline = metrics.Timeline

	// PriorityPolicy orders jobs within a workflow (HLF, LPF, MPF).
	PriorityPolicy = priority.Policy

	// Instrumentation bundles the runtime observability layer: a metrics
	// registry plus an event sink. Pass it via WithInstrumentation; see
	// OBSERVABILITY.md.
	Instrumentation = obs.Obs
	// Metrics is a registry of counters, gauges and histograms with
	// Prometheus text exposition (WriteTo / Handler).
	Metrics = obs.Registry
	// ObsEvent is one typed scheduler event (see EventSink).
	ObsEvent = obs.Event
	// EventSink receives the structured scheduler event stream.
	EventSink = obs.EventSink
	// EventRing is a bounded in-memory EventSink keeping the newest events.
	EventRing = obs.Ring
	// EventKind discriminates ObsEvent records.
	EventKind = obs.Kind

	// HealthConfig shapes the deadline-health tracker; enable it with
	// Instrumentation.EnableHealth before a run starts.
	HealthConfig = obs.HealthConfig
	// HealthTracker computes per-workflow slack against the scheduling
	// plan's progress requirements on a configurable snapshot interval.
	HealthTracker = obs.HealthTracker
	// HealthSnapshot is one immutable point-in-time health view (the
	// /statusz health block).
	HealthSnapshot = obs.HealthSnapshot
	// WorkflowHealth is one workflow's row in a HealthSnapshot.
	WorkflowHealth = obs.WorkflowHealth

	// PostmortemSpec hands AnalyzePostmortem one workflow's DAG and plan.
	PostmortemSpec = obs.PostmortemSpec
	// PostmortemReport is the miss root-cause analysis of a run.
	PostmortemReport = obs.PostmortemReport

	// IntrospectionServer serves /metrics, /statusz, and /debug/pprof for
	// an instrumented run; see ServeIntrospection.
	IntrospectionServer = obs.IntrospectionServer

	// AdmissionController is the submission front door: every workflow
	// release is ruled Admit, Defer, or Reject before the scheduler sees it.
	// Attach one with WithAdmission; build one with NewAdmission or
	// AlwaysAdmit. See DESIGN.md §14.
	AdmissionController = admission.Controller
	// AdmissionDecision is one front-door ruling.
	AdmissionDecision = admission.Decision
	// AdmissionConfig shapes NewAdmission: cluster capacity, mode, margin,
	// and per-tenant policies.
	AdmissionConfig = admission.Config
	// AdmissionTenant configures one tenant's rate limit, quota share, and
	// priority tier.
	AdmissionTenant = admission.Tenant
	// AdmissionRecord is one audit-trail entry from the pipeline controller.
	AdmissionRecord = admission.Record
)

// Event kinds carried by the scheduler event stream (ObsEvent.Kind).
const (
	KindWorkflowSubmitted = obs.KindWorkflowSubmitted
	KindWorkflowCompleted = obs.KindWorkflowCompleted
	KindDeadlineMissed    = obs.KindDeadlineMissed
	KindJobActivated      = obs.KindJobActivated
	KindTaskAssigned      = obs.KindTaskAssigned
	KindHeartbeatServed   = obs.KindHeartbeatServed
	KindQueueInsert       = obs.KindQueueInsert
	KindQueueDelete       = obs.KindQueueDelete
	KindQueueHeadHit      = obs.KindQueueHeadHit
	KindPlanGenerated     = obs.KindPlanGenerated

	KindTaskCompleted       = obs.KindTaskCompleted
	KindHealthSlack         = obs.KindHealthSlack
	KindHealthFellBehind    = obs.KindHealthFellBehind
	KindHealthRecovered     = obs.KindHealthRecovered
	KindHealthPredictedMiss = obs.KindHealthPredictedMiss

	KindAdmissionAdmitted = obs.KindAdmissionAdmitted
	KindAdmissionDeferred = obs.KindAdmissionDeferred
	KindAdmissionRejected = obs.KindAdmissionRejected
)

// Admission verdicts (AdmissionDecision.Verdict) and controller modes
// (AdmissionConfig.Mode).
const (
	AdmissionAdmit  = admission.Admit
	AdmissionDefer  = admission.Defer
	AdmissionReject = admission.Reject

	AdmissionModeAlways      = admission.ModeAlways
	AdmissionModeFeasible    = admission.ModeFeasible
	AdmissionModeTokenBucket = admission.ModeTokenBucket
)

// Slot types.
const (
	MapSlot    = cluster.MapSlot
	ReduceSlot = cluster.ReduceSlot
)

// NewWorkflow starts building a workflow named name.
func NewWorkflow(name string) *Builder { return workflow.NewBuilder(name) }

// ParseWorkflowXML reads a workflow from the XML configuration format of the
// paper (Section III-B), inferring prerequisites from dataset paths.
func ParseWorkflowXML(r io.Reader) (*Workflow, error) { return workflow.ParseXML(r) }

// MarshalWorkflowXML renders w in the configuration format accepted by
// ParseWorkflowXML.
func MarshalWorkflowXML(w *Workflow) ([]byte, error) { return workflow.MarshalXML(w) }

// At converts a duration since the simulation epoch into an instant.
func At(d time.Duration) Time { return simtime.Epoch.Add(d) }

// Priority policies.
var (
	// HLF is Highest Level First.
	HLF PriorityPolicy = priority.HLF{}
	// LPF is Longest Path First.
	LPF PriorityPolicy = priority.LPF{}
	// MPF is Maximum Parallelism First.
	MPF PriorityPolicy = priority.MPF{}
)

// PriorityByName resolves "HLF", "LPF", or "MPF".
func PriorityByName(name string) (PriorityPolicy, error) { return priority.ByName(name) }

// GeneratePlan produces a workflow's scheduling plan against a cluster with
// the given total slot count: job ranks under pol plus the progress
// requirements from the resource-capped Algorithm 1 simulation.
func GeneratePlan(w *Workflow, clusterSlots int, pol PriorityPolicy) (*Plan, error) {
	return plan.GenerateCapped(w, clusterSlots, pol)
}

// GeneratePlanTyped is GeneratePlan with separate map and reduce slot
// budgets and a safety margin in (0, 1]; it is what the paper-reproduction
// experiments use (margin 0.85).
func GeneratePlanTyped(w *Workflow, mapSlots, reduceSlots int, pol PriorityPolicy, margin float64) (*Plan, error) {
	return plan.GenerateCappedTyped(w, plan.Caps{Maps: mapSlots, Reduces: reduceSlots}, pol, margin)
}

// Scheduler identifies one of the built-in workflow schedulers.
type Scheduler string

// Built-in schedulers: the paper's WOHA progress-based scheduler with each
// intra-workflow priority policy, plus the three ported baselines.
const (
	SchedulerWOHALPF Scheduler = "WOHA-LPF"
	SchedulerWOHAHLF Scheduler = "WOHA-HLF"
	SchedulerWOHAMPF Scheduler = "WOHA-MPF"
	SchedulerFIFO    Scheduler = "FIFO"
	SchedulerFair    Scheduler = "Fair"
	SchedulerEDF     Scheduler = "EDF"
)

// Schedulers lists every built-in scheduler name.
func Schedulers() []Scheduler {
	return []Scheduler{
		SchedulerEDF, SchedulerFIFO, SchedulerFair,
		SchedulerWOHALPF, SchedulerWOHAHLF, SchedulerWOHAMPF,
	}
}

// priorityFor returns the WOHA intra-workflow policy, or nil for baselines.
func (s Scheduler) priorityFor() PriorityPolicy {
	switch s {
	case SchedulerWOHALPF:
		return LPF
	case SchedulerWOHAHLF:
		return HLF
	case SchedulerWOHAMPF:
		return MPF
	default:
		return nil
	}
}

// newPolicy instantiates the scheduler. ins may be nil.
func (s Scheduler) newPolicy(seed int64, ins *obs.Obs) (cluster.Policy, error) {
	switch s {
	case SchedulerFIFO:
		return scheduler.NewFIFO(), nil
	case SchedulerFair:
		return scheduler.NewFair(), nil
	case SchedulerEDF:
		return scheduler.NewEDF(), nil
	case SchedulerWOHALPF, SchedulerWOHAHLF, SchedulerWOHAMPF:
		return core.NewScheduler(core.Options{
			Seed:       seed,
			PolicyName: s.priorityFor().Name(),
			Obs:        ins,
		}), nil
	default:
		return nil, fmt.Errorf("woha: unknown scheduler %q", s)
	}
}

// SessionOption customizes a Session.
type SessionOption func(*sessionOptions)

type sessionOptions struct {
	seed        int64
	margin      float64
	marginSet   bool
	observer    Observer
	policy      Policy
	obs         *obs.Obs
	planWorkers int
	planCache   int
	planner     *Planner
	admission   AdmissionController
}

// WithSeed sets the seed for the scheduler's internal PRNG.
func WithSeed(seed int64) SessionOption {
	return func(o *sessionOptions) { o.seed = seed }
}

// WithPlanMargin sets the safety margin used when Submit generates plans
// (default 0.85; see plan.GenerateCappedMargin).
func WithPlanMargin(margin float64) SessionOption {
	return func(o *sessionOptions) { o.margin = margin; o.marginSet = true }
}

// WithPlannerWorkers sets how many Algorithm 1 probes Submit's plan
// generation may run concurrently (and the across-workflow concurrency of
// SubmitAll). n <= 0 selects one worker per core; the default is 1
// (sequential, the seed behaviour). Any worker count produces byte-identical
// plans — see internal/planner.
func WithPlannerWorkers(n int) SessionOption {
	return func(o *sessionOptions) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		o.planWorkers = n
	}
}

// WithPlanCache enables the structural plan cache with room for n plans
// (n <= 0 disables, the default). Workflows sharing a DAG shape, task
// statistics, policy, and relative deadline — recurring instances,
// template-stamped copies — are served one simulated plan; see
// internal/planner.
func WithPlanCache(n int) SessionOption {
	return func(o *sessionOptions) { o.planCache = n }
}

// Planner is the standalone plan-generation service: a structural plan cache
// plus singleflight request coalescing in front of the Algorithm 1
// generators (see internal/planner). One Planner is safe to share across
// sessions, RunSeeds sweeps, and the experiment corpora — concurrent
// requests for the same (DAG shape, caps, policy, relative deadline) key
// cost one simulation total, and every caller receives a byte-identical,
// independently owned plan.
type Planner = planner.Planner

// NewPlanner builds a shareable plan service from the plan-shaping session
// options: WithPlannerWorkers, WithPlanCache, WithPlanMargin, and
// WithInstrumentation (which exposes the woha_planner_* metrics). Other
// options are ignored. Pass the result to sessions via WithPlanner.
func NewPlanner(opts ...SessionOption) *Planner {
	o := sessionOptions{margin: 0.85}
	for _, opt := range opts {
		opt(&o)
	}
	return planner.New(planner.Config{
		Workers:   o.planWorkers,
		CacheSize: o.planCache,
		Margin:    o.margin,
		Obs:       o.obs,
	})
}

// WithPlanner makes the session (or RunSeeds sweep) generate plans through a
// shared Planner instead of a private one, so its cache and coalescing span
// every client of that Planner. The session adopts the planner's margin;
// combining this with a conflicting WithPlanMargin is an error. Per-planner
// knobs (WithPlannerWorkers, WithPlanCache) are ignored when a shared
// planner is supplied.
func WithPlanner(pl *Planner) SessionOption {
	return func(o *sessionOptions) { o.planner = pl }
}

// WithObserver attaches a task lifecycle observer (e.g. NewTimeline()).
func WithObserver(obs Observer) SessionOption {
	return func(o *sessionOptions) { o.observer = obs }
}

// WithPolicy runs the session under a custom Policy implementation instead
// of a built-in scheduler, mirroring the paper's pluggable WorkflowScheduler.
func WithPolicy(p Policy) SessionOption {
	return func(o *sessionOptions) { o.policy = p }
}

// WithInstrumentation attaches the runtime observability layer: scheduler
// metrics flow into ins's registry and typed events into its sink. A nil ins
// is allowed and disables instrumentation.
func WithInstrumentation(ins *Instrumentation) SessionOption {
	return func(o *sessionOptions) { o.obs = ins }
}

// WithAdmission routes every workflow arrival through ctrl before the
// scheduler sees it: Admit proceeds as before, Defer re-queues the arrival at
// the controller's retry instant, Reject resolves the workflow unrun with a
// reason and (when one exists) a counter-offered feasible deadline on its
// WorkflowResult. nil (the default) admits everything on the untouched fast
// path. Controllers are stateful; do not share one across sessions.
func WithAdmission(ctrl AdmissionController) SessionOption {
	return func(o *sessionOptions) { o.admission = ctrl }
}

// NewAdmission builds the staged admission pipeline described in DESIGN.md
// §14: per-tenant token buckets, quota shares, and priority tiers stacked in
// front of a capacity-ledger feasibility check. See AdmissionConfig for the
// knobs; mode AdmissionModeAlways yields the zero-overhead front door.
func NewAdmission(cfg AdmissionConfig) (AdmissionController, error) {
	return admission.New(cfg)
}

// AlwaysAdmit returns the trivial controller that admits every workflow
// immediately — the explicit form of the default behaviour, useful for
// keeping the woha_admission_* instruments live under an open front door.
// ins may be nil.
func AlwaysAdmit(ins *Instrumentation) AdmissionController {
	return admission.Always(ins)
}

// NewTimeline returns a slot-allocation recorder to pass to WithObserver.
func NewTimeline() *Timeline { return metrics.NewTimeline() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewEventRing returns a bounded event sink keeping the newest n events
// (n <= 0 selects a default size).
func NewEventRing(n int) *EventRing { return obs.NewRing(n) }

// NewJSONLSink returns an event sink writing one JSON object per line to w.
// Check its Err method after the run for write failures.
func NewJSONLSink(w io.Writer) *obs.JSONL { return obs.NewJSONL(w) }

// NewInstrumentation bundles a registry and an event sink (either may be
// nil) into an Instrumentation for WithInstrumentation. It eagerly registers
// the standard woha_* instruments so exposition is complete even before any
// activity.
func NewInstrumentation(reg *Metrics, sink EventSink) *Instrumentation {
	return obs.New(reg, sink)
}

// WriteTrace renders events as Chrome trace-event JSON loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing, with per-tracker and per-workflow
// timeline tracks (per-workflow slack counter tracks included when the
// health tracker was enabled).
func WriteTrace(w io.Writer, events []ObsEvent) error { return obs.WriteTrace(w, events) }

// AnalyzePostmortem reconstructs each missed workflow's timeline from the
// event stream and attributes the miss: the first unmet progress
// requirement F_i, the critical-path job/stage that went late, and a
// wait-vs-run decomposition. See OBSERVABILITY.md for the JSON schema.
func AnalyzePostmortem(events []ObsEvent, specs []PostmortemSpec) *PostmortemReport {
	return obs.AnalyzePostmortem(events, specs)
}

// ServeIntrospection serves the runtime HTTP plane (/metrics, /statusz,
// /debug/pprof) for ins on addr (":0" picks a free port) until Shutdown.
func ServeIntrospection(addr string, ins *Instrumentation) (*IntrospectionServer, error) {
	return obs.ServeIntrospection(addr, ins)
}

// Session wires a simulated cluster to a scheduler and accepts workflow
// submissions. It mirrors the paper's submission pipeline: for WOHA
// schedulers, Submit plays the client role and generates the workflow's
// resource-capped scheduling plan before handing both to the JobTracker.
type Session struct {
	cfg     ClusterConfig
	sched   Scheduler
	prio    PriorityPolicy
	sim     *cluster.Simulator
	opts    sessionOptions
	planner *planner.Planner
}

// NewSession creates a session on a cluster configured by cfg under the
// named scheduler.
func NewSession(cfg ClusterConfig, sched Scheduler, opts ...SessionOption) (*Session, error) {
	o := sessionOptions{margin: 0.85}
	for _, opt := range opts {
		opt(&o)
	}
	pol := o.policy
	if pol == nil {
		var err error
		pol, err = sched.newPolicy(o.seed, o.obs)
		if err != nil {
			return nil, err
		}
	}
	pol = cluster.InstrumentPolicy(pol, o.obs)
	sim, err := cluster.New(cfg, pol, o.observer)
	if err != nil {
		return nil, fmt.Errorf("woha: %w", err)
	}
	sim.SetInstrumentation(o.obs)
	sim.SetAdmission(o.admission)
	s := &Session{cfg: cfg, sched: sched, prio: sched.priorityFor(), sim: sim, opts: o}
	if s.prio != nil && o.policy == nil {
		s.planner, err = o.resolvePlanner()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// resolvePlanner returns the plan service the options select: the shared one
// passed via WithPlanner (whose margin the session adopts, rejecting a
// conflicting explicit WithPlanMargin) or a private planner built from the
// plan-shaping knobs.
func (o *sessionOptions) resolvePlanner() (*Planner, error) {
	if o.planner != nil {
		if o.marginSet && o.planner.Margin() != o.margin {
			return nil, fmt.Errorf("woha: shared planner margin %v conflicts with WithPlanMargin %v", o.planner.Margin(), o.margin)
		}
		o.margin = o.planner.Margin()
		return o.planner, nil
	}
	return planner.New(planner.Config{
		Workers:   o.planWorkers,
		CacheSize: o.planCache,
		Margin:    o.margin,
		Obs:       o.obs,
	}), nil
}

// Submit queues a workflow. Under a WOHA scheduler the session generates the
// workflow's typed, resource-capped scheduling plan client-side; baselines
// receive no plan, as in the paper.
func (s *Session) Submit(w *Workflow) error {
	var p *Plan
	if s.planner != nil {
		var err error
		p, err = s.planner.Plan(w, plan.Caps{Maps: s.cfg.MapSlots(), Reduces: s.cfg.ReduceSlots()}, s.prio)
		if err != nil {
			return fmt.Errorf("woha: %w", err)
		}
		s.opts.obs.PlanGenerated(w.Release, w.Name, p.SearchIters)
	}
	return s.SubmitWithPlan(w, p)
}

// SubmitAll queues a batch of workflows in order. Under a WOHA scheduler the
// batch's plans are generated through the session planner — concurrently
// across workflows when WithPlannerWorkers allows — before any submission,
// so a failed plan leaves the session untouched.
func (s *Session) SubmitAll(flows []*Workflow) error {
	if s.planner == nil {
		for _, w := range flows {
			if err := s.Submit(w); err != nil {
				return err
			}
		}
		return nil
	}
	plans, err := s.planner.PlanAll(flows, plan.Caps{Maps: s.cfg.MapSlots(), Reduces: s.cfg.ReduceSlots()}, s.prio)
	if err != nil {
		return fmt.Errorf("woha: %w", err)
	}
	for i, w := range flows {
		s.opts.obs.PlanGenerated(w.Release, w.Name, plans[i].SearchIters)
		if err := s.SubmitWithPlan(w, plans[i]); err != nil {
			return err
		}
	}
	return nil
}

// SubmitWithPlan queues a workflow with a caller-provided plan (may be nil).
func (s *Session) SubmitWithPlan(w *Workflow, p *Plan) error {
	if s.sim == nil {
		return fmt.Errorf("woha: Submit after Run")
	}
	if err := s.sim.Submit(w, p); err != nil {
		return fmt.Errorf("woha: %w", err)
	}
	return nil
}

// Run executes the simulation to completion. It may be called once.
func (s *Session) Run() (*Result, error) {
	if s.sim == nil {
		return nil, fmt.Errorf("woha: Run called twice")
	}
	res, err := s.sim.Run()
	if err != nil {
		return nil, fmt.Errorf("woha: %w", err)
	}
	if s.opts.policy == nil && s.opts.observer == nil {
		// Built-in schedulers and instrumentation retain nothing from the
		// simulator past Run, so its arenas can go straight back to the
		// pool (Result is self-contained). With a user-supplied policy or
		// observer the session cannot know what simulator state the caller
		// still references, so the simulator is left for the collector.
		s.sim.Release()
		s.sim = nil
	}
	return res, nil
}

// RunSeeds replays the same workload under sched once per seed, fanning the
// independent replicas over a worker pool (workers <= 0 selects one per
// core, 1 runs serially). Each replica uses its seed for both the cluster's
// noise PRNG and the scheduler's queue PRNG. Results align with seeds and
// are identical at any worker count (see internal/runner).
//
// Plans do not depend on the seed, so under a WOHA scheduler they are
// generated once — honoring WithPlanMargin, WithPlannerWorkers, WithPlanCache,
// and WithPlanner (a shared plan service whose cache spans other sweeps and
// sessions) — and shared read-only across replicas. WithObserver and
// WithPolicy are per-run state and are rejected here; use WithInstrumentation
// to collect woha_runner_* metrics for the sweep.
func RunSeeds(cfg ClusterConfig, sched Scheduler, flows []*Workflow, seeds []int64, workers int, opts ...SessionOption) ([]*Result, error) {
	o := sessionOptions{margin: 0.85}
	for _, opt := range opts {
		opt(&o)
	}
	if o.observer != nil || o.policy != nil {
		return nil, fmt.Errorf("woha: RunSeeds does not accept WithObserver or WithPolicy; replicas need per-run state")
	}
	if o.admission != nil {
		return nil, fmt.Errorf("woha: RunSeeds does not accept WithAdmission; controllers are stateful per-run")
	}
	if _, err := sched.newPolicy(0, nil); err != nil {
		return nil, err
	}

	var plans []*Plan
	if prio := sched.priorityFor(); prio != nil {
		pl, err := o.resolvePlanner()
		if err != nil {
			return nil, err
		}
		plans, err = pl.PlanAll(flows, plan.Caps{Maps: cfg.MapSlots(), Reduces: cfg.ReduceSlots()}, prio)
		if err != nil {
			return nil, fmt.Errorf("woha: %w", err)
		}
	}

	cells := make([]runner.Cell, len(seeds))
	for i, seed := range seeds {
		cc := cfg
		cc.Seed = seed
		cells[i] = runner.Cell{
			Name:   fmt.Sprintf("%s/seed=%d", sched, seed),
			Config: cc,
			Policy: func() cluster.Policy {
				pol, _ := sched.newPolicy(seed, nil)
				return pol
			},
			Flows: flows,
		}
		if plans != nil {
			cells[i].Plans = func() ([]*Plan, error) { return plans, nil }
		}
	}
	results, err := runner.New(runner.Config{Workers: workers, Obs: o.obs}).RunAll(cells)
	if err != nil {
		return nil, fmt.Errorf("woha: %w", err)
	}
	return results, nil
}
