package woha_test

import (
	"strings"
	"testing"
	"time"

	woha "repro"
)

// scriptedAdmission replays per-workflow decision queues, admitting once a
// queue runs dry. It lets the facade tests pin how each verdict propagates
// through the simulator without depending on the real pipeline's policy.
type scriptedAdmission struct {
	decisions map[string][]woha.AdmissionDecision
	completed []string
}

func (s *scriptedAdmission) Name() string { return "scripted" }

func (s *scriptedAdmission) Decide(w *woha.Workflow, _ *woha.Plan, _ woha.Time) woha.AdmissionDecision {
	q := s.decisions[w.Name]
	if len(q) == 0 {
		return woha.AdmissionDecision{Verdict: woha.AdmissionAdmit}
	}
	s.decisions[w.Name] = q[1:]
	return q[0]
}

func (s *scriptedAdmission) Complete(w *woha.Workflow, _ woha.Time) {
	s.completed = append(s.completed, w.Name)
}

func runWithAdmission(t *testing.T, ctrl woha.AdmissionController, flows ...*woha.Workflow) *woha.Result {
	t.Helper()
	opts := []woha.SessionOption{woha.WithSeed(1)}
	if ctrl != nil {
		opts = append(opts, woha.WithAdmission(ctrl))
	}
	sess, err := woha.NewSession(woha.ClusterConfig{
		Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
	}, woha.SchedulerWOHALPF, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range flows {
		if err := sess.Submit(w); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAdmissionRejectSurfacesInResult checks a rejected workflow never runs
// and its result row carries the refusal: reason, counter-offer, and zeroed
// execution fields, with the aggregate counters excluding it.
func TestAdmissionRejectSurfacesInResult(t *testing.T) {
	offer := woha.At(30 * time.Minute)
	ctrl := &scriptedAdmission{decisions: map[string][]woha.AdmissionDecision{
		"turned-away": {{Verdict: woha.AdmissionReject, Reason: "infeasible", CounterOffer: offer}},
	}}
	res := runWithAdmission(t, ctrl,
		etl(t, "runs", 2*time.Hour),
		etl(t, "turned-away", 2*time.Hour),
	)
	if res.Rejections() != 1 {
		t.Fatalf("Rejections = %d, want 1", res.Rejections())
	}
	var row woha.WorkflowResult
	for _, wr := range res.Workflows {
		if wr.Name == "turned-away" {
			row = wr
		}
	}
	if !row.Rejected || row.RejectReason != "infeasible" || row.CounterOffer != offer {
		t.Fatalf("rejected row = %+v", row)
	}
	if row.Met || row.Finish != 0 {
		t.Errorf("rejected workflow reports execution: %+v", row)
	}
	if res.AdmittedMissRatio() != 0 {
		t.Errorf("AdmittedMissRatio = %v, want 0 (the admitted workflow met)", res.AdmittedMissRatio())
	}
	if len(ctrl.completed) != 1 || ctrl.completed[0] != "runs" {
		t.Errorf("Complete calls = %v, want exactly the admitted workflow", ctrl.completed)
	}
}

// TestAdmissionDeferDelaysStart runs the same workload with and without a
// one-shot deferral and checks the deferred run finishes later by at least
// the deferral gap while still completing.
func TestAdmissionDeferDelaysStart(t *testing.T) {
	const gap = 10 * time.Minute
	base := runWithAdmission(t, nil, etl(t, "w", 2*time.Hour))
	ctrl := &scriptedAdmission{decisions: map[string][]woha.AdmissionDecision{
		"w": {{Verdict: woha.AdmissionDefer, Reason: "scripted", RetryAt: woha.At(gap)}},
	}}
	deferred := runWithAdmission(t, ctrl, etl(t, "w", 2*time.Hour))
	b, d := base.Workflows[0], deferred.Workflows[0]
	if b.Rejected || d.Rejected {
		t.Fatalf("unexpected rejection: base %+v deferred %+v", b, d)
	}
	if got := d.Finish.Sub(b.Finish); got < gap {
		t.Errorf("deferral moved finish by %v, want >= %v", got, gap)
	}
	if !d.Met {
		t.Errorf("deferred workflow missed: %+v", d)
	}
}

// TestRunSeedsRejectsAdmission pins the guard: admission controllers are
// stateful per-run, so the seed-sweep API refuses them.
func TestRunSeedsRejectsAdmission(t *testing.T) {
	_, err := woha.RunSeeds(
		woha.ClusterConfig{Nodes: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1},
		woha.SchedulerWOHALPF,
		[]*woha.Workflow{etl(t, "w", 2*time.Hour)},
		[]int64{1, 2}, 1,
		woha.WithAdmission(woha.AlwaysAdmit(nil)),
	)
	if err == nil || !strings.Contains(err.Error(), "WithAdmission") {
		t.Errorf("err = %v, want WithAdmission rejection", err)
	}
}

// TestFeasibleFrontDoorEndToEnd drives the real pipeline through the facade:
// an impossible deadline is refused at the door with a counter-offer past
// the asked deadline, while the feasible workflow is admitted and meets.
func TestFeasibleFrontDoorEndToEnd(t *testing.T) {
	ctrl, err := woha.NewAdmission(woha.AdmissionConfig{
		Cluster: woha.PlanCaps{Maps: 8, Reduces: 4},
		Mode:    woha.AdmissionModeFeasible,
	})
	if err != nil {
		t.Fatal(err)
	}
	ok := etl(t, "ok", 2*time.Hour)
	hopeless := woha.NewWorkflow("hopeless").
		Job("extract", 40, 8, 45*time.Second, 2*time.Minute).
		Job("clean", 20, 4, 30*time.Second, 90*time.Second, "extract").
		Job("aggregate", 20, 4, 30*time.Second, 3*time.Minute, "clean").
		MustBuild(woha.At(10*time.Second), woha.At(3*time.Minute))
	res := runWithAdmission(t, ctrl, ok, hopeless)
	if res.Rejections() != 1 {
		t.Fatalf("Rejections = %d, want 1: %+v", res.Rejections(), res.Workflows)
	}
	for _, wr := range res.Workflows {
		switch wr.Name {
		case "ok":
			if wr.Rejected || !wr.Met {
				t.Errorf("ok: %+v, want admitted and met", wr)
			}
		case "hopeless":
			if !wr.Rejected || wr.RejectReason != "infeasible" {
				t.Errorf("hopeless: %+v, want infeasible rejection", wr)
			}
			if wr.CounterOffer <= hopeless.Deadline {
				t.Errorf("counter-offer %v not past asked deadline %v", wr.CounterOffer, hopeless.Deadline)
			}
		}
	}
}
