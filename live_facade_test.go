package woha_test

import (
	"context"
	"testing"
	"time"

	woha "repro"
)

func liveCfg() woha.LiveConfig {
	return woha.LiveConfig{
		Nodes:              4,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		HeartbeatInterval:  2 * time.Millisecond,
		TimeScale:          0.0002,
	}
}

func TestLiveSessionInProcess(t *testing.T) {
	sess, err := woha.NewLiveSession(liveCfg(), woha.SchedulerWOHALPF, false, woha.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(etl(t, "w", 2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := sess.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses() != 0 {
		t.Errorf("missed %d deadlines", res.DeadlineMisses())
	}
	if res.TasksStarted != 96 {
		t.Errorf("TasksStarted = %d, want 96", res.TasksStarted)
	}
}

func TestLiveSessionTCP(t *testing.T) {
	sess, err := woha.NewLiveSession(liveCfg(), woha.SchedulerFIFO, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(etl(t, "w", 2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := sess.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workflows[0].Finish == 0 {
		t.Error("workflow never finished over TCP")
	}
}

func TestLiveSessionUnknownScheduler(t *testing.T) {
	if _, err := woha.NewLiveSession(liveCfg(), "nope", false); err == nil {
		t.Error("unknown scheduler accepted")
	}
}
