package woha_test

import (
	"strings"
	"testing"
	"time"

	woha "repro"
)

func etl(t *testing.T, name string, deadline time.Duration) *woha.Workflow {
	t.Helper()
	return woha.NewWorkflow(name).
		Job("extract", 40, 8, 45*time.Second, 2*time.Minute).
		Job("clean", 20, 4, 30*time.Second, 90*time.Second, "extract").
		Job("aggregate", 20, 4, 30*time.Second, 3*time.Minute, "clean").
		MustBuild(0, woha.At(deadline))
}

func TestQuickstartFlow(t *testing.T) {
	sess, err := woha.NewSession(woha.ClusterConfig{
		Nodes: 10, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
	}, woha.SchedulerWOHALPF)
	if err != nil {
		t.Fatal(err)
	}
	w := etl(t, "etl", time.Hour)
	if err := sess.Submit(w); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workflows) != 1 || !res.Workflows[0].Met {
		t.Fatalf("workflow outcome: %+v", res.Workflows)
	}
	if res.Policy != "WOHA-LPF" {
		t.Errorf("Policy = %q", res.Policy)
	}
}

func TestEverySchedulerRuns(t *testing.T) {
	for _, sched := range woha.Schedulers() {
		sess, err := woha.NewSession(woha.ClusterConfig{
			Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		}, sched, woha.WithSeed(7))
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if err := sess.Submit(etl(t, "w", 2*time.Hour)); err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		res, err := sess.Run()
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if res.TasksStarted != 96 {
			t.Errorf("%s: started %d tasks, want 96", sched, res.TasksStarted)
		}
	}
}

func TestUnknownScheduler(t *testing.T) {
	_, err := woha.NewSession(woha.ClusterConfig{
		Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
	}, woha.Scheduler("bogus"))
	if err == nil || !strings.Contains(err.Error(), "unknown scheduler") {
		t.Errorf("err = %v, want unknown-scheduler", err)
	}
}

func TestGeneratePlan(t *testing.T) {
	w := etl(t, "w", time.Hour)
	p, err := woha.GeneratePlan(w, 30, woha.LPF)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalTasks != w.TotalTasks() || len(p.Reqs) == 0 {
		t.Errorf("plan = %+v", p)
	}
	tp, err := woha.GeneratePlanTyped(w, 20, 10, woha.HLF, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if tp.TotalTasks != w.TotalTasks() {
		t.Errorf("typed plan = %+v", tp)
	}
}

func TestXMLRoundTripThroughFacade(t *testing.T) {
	w := etl(t, "xmlflow", time.Hour)
	data, err := woha.MarshalWorkflowXML(w)
	if err != nil {
		t.Fatal(err)
	}
	back, err := woha.ParseWorkflowXML(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != w.Name || len(back.Jobs) != len(w.Jobs) {
		t.Errorf("round trip: %+v", back)
	}
}

func TestTimelineObserver(t *testing.T) {
	tl := woha.NewTimeline()
	sess, err := woha.NewSession(woha.ClusterConfig{
		Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
	}, woha.SchedulerFIFO, woha.WithObserver(tl))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(etl(t, "w", 2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if tl.Workflows() != 1 {
		t.Errorf("timeline saw %d workflows", tl.Workflows())
	}
	if got := tl.PeakConcurrency(woha.MapSlot); got == 0 || got > 8 {
		t.Errorf("map peak = %d", got)
	}
}

// roundRobin is a trivial custom Policy proving the pluggable-scheduler
// path works end to end.
type roundRobin struct {
	live []*woha.WorkflowState
	next int
}

func (r *roundRobin) Name() string { return "custom-rr" }

func (r *roundRobin) WorkflowAdded(ws *woha.WorkflowState, _ woha.Time) {
	r.live = append(r.live, ws)
}

func (r *roundRobin) JobActivated(*woha.WorkflowState, woha.JobID, woha.Time) {}

func (r *roundRobin) NextTask(_ woha.Time, st woha.SlotType) (*woha.WorkflowState, woha.JobID, bool) {
	for range r.live {
		ws := r.live[r.next%len(r.live)]
		r.next++
		if !ws.Done {
			for i := range ws.Jobs {
				if ws.Jobs[i].Schedulable(st) {
					return ws, woha.JobID(i), true
				}
			}
		}
	}
	return nil, 0, false
}

func (r *roundRobin) TaskStarted(*woha.WorkflowState, woha.JobID, woha.SlotType, woha.Time) {}

func (r *roundRobin) WorkflowCompleted(*woha.WorkflowState, woha.Time) {}

func TestCustomPolicyPlugsIn(t *testing.T) {
	sess, err := woha.NewSession(woha.ClusterConfig{
		Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
	}, "", woha.WithPolicy(&roundRobin{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(etl(t, "a", 2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(etl(t, "b", 2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "custom-rr" || res.TasksStarted != 192 {
		t.Errorf("res = %q %d", res.Policy, res.TasksStarted)
	}
}

func TestRunSeedsMatchesSessions(t *testing.T) {
	cfg := woha.ClusterConfig{
		Nodes: 10, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Noise: 0.2,
	}
	flows := []*woha.Workflow{etl(t, "a", time.Hour), etl(t, "b", 2*time.Hour)}
	seeds := []int64{3, 7, 11}

	parallel, err := woha.RunSeeds(cfg, woha.SchedulerWOHALPF, flows, seeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(seeds) {
		t.Fatalf("got %d results, want %d", len(parallel), len(seeds))
	}
	// Each replica must match a one-off Session run at the same seed.
	for i, seed := range seeds {
		scfg := cfg
		scfg.Seed = seed
		sess, err := woha.NewSession(scfg, woha.SchedulerWOHALPF, woha.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.SubmitAll(flows); err != nil {
			t.Fatal(err)
		}
		want, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		got := parallel[i]
		if got.Makespan != want.Makespan || got.TasksStarted != want.TasksStarted ||
			len(got.Workflows) != len(want.Workflows) {
			t.Errorf("seed %d: replica (makespan %v, %d tasks) != session (makespan %v, %d tasks)",
				seed, got.Makespan, got.TasksStarted, want.Makespan, want.TasksStarted)
		}
		for j := range got.Workflows {
			if got.Workflows[j] != want.Workflows[j] {
				t.Errorf("seed %d: workflow %d differs: %+v vs %+v",
					seed, j, got.Workflows[j], want.Workflows[j])
			}
		}
	}
}

func TestRunSeedsRejectsPerRunOptions(t *testing.T) {
	cfg := woha.ClusterConfig{Nodes: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1}
	flows := []*woha.Workflow{etl(t, "a", time.Hour)}
	if _, err := woha.RunSeeds(cfg, woha.SchedulerFIFO, flows, []int64{1}, 1,
		woha.WithObserver(woha.NewTimeline())); err == nil {
		t.Error("WithObserver accepted; replicas cannot share one observer")
	}
	if _, err := woha.RunSeeds(cfg, "bogus", flows, []int64{1}, 1); err == nil {
		t.Error("unknown scheduler accepted")
	}
}
