package woha_test

import (
	"fmt"
	"strings"
	"time"

	woha "repro"
)

// ExampleNewSession builds a deadline-constrained workflow, schedules it
// under WOHA on a simulated cluster, and reports the outcome.
func ExampleNewSession() {
	w := woha.NewWorkflow("nightly-etl").
		Job("extract", 40, 8, 45*time.Second, 2*time.Minute).
		Job("aggregate", 16, 4, 30*time.Second, 3*time.Minute, "extract").
		MustBuild(0, woha.At(45*time.Minute))

	sess, err := woha.NewSession(woha.ClusterConfig{
		Nodes: 10, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
	}, woha.SchedulerWOHALPF)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := sess.Submit(w); err != nil {
		fmt.Println(err)
		return
	}
	res, err := sess.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	wf := res.Workflows[0]
	fmt.Printf("%s met=%v workspan=%v\n", wf.Name, wf.Met, wf.Workspan)
	// Output:
	// nightly-etl met=true workspan=7m0s
}

// ExampleParseWorkflowXML shows the paper's XML configuration format with
// prerequisite inference from dataset paths.
func ExampleParseWorkflowXML() {
	doc := `
<workflow name="stats" deadline="30m">
  <job name="ingest" maps="10" reduces="2" map-time="30s" reduce-time="1m">
    <output>/data/stage</output>
  </job>
  <job name="report" maps="4" reduces="1" map-time="20s" reduce-time="2m">
    <input>/data/stage/part-0</input>
    <output>/data/out</output>
  </job>
</workflow>`
	w, err := woha.ParseWorkflowXML(strings.NewReader(doc))
	if err != nil {
		fmt.Println(err)
		return
	}
	report := w.JobByName("report")
	fmt.Printf("%d jobs; report depends on %s\n",
		len(w.Jobs), w.Jobs[report.Prereqs[0]].Name)
	// Output:
	// 2 jobs; report depends on ingest
}

// ExampleGeneratePlan produces a workflow's resource-capped scheduling plan
// — the client-side artifact WOHA ships to the master.
func ExampleGeneratePlan() {
	w := woha.NewWorkflow("pipeline").
		Job("a", 8, 4, 10*time.Second, 20*time.Second).
		Job("b", 8, 4, 10*time.Second, 20*time.Second, "a").
		MustBuild(0, woha.At(4*time.Minute))

	p, err := woha.GeneratePlan(w, 64, woha.LPF)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("cap=%d slots makespan=%v feasible=%v requirements=%d encoded=%dB\n",
		p.Cap, p.Makespan, p.Feasible, len(p.Reqs), p.Size())
	// Output:
	// cap=2 slots makespan=2m40s feasible=true requirements=12 encoded=55B
}
