package woha_test

import (
	"strings"
	"testing"
	"time"

	woha "repro"
)

func parseSC(t *testing.T, doc string) *woha.SchedulerConfig {
	t.Helper()
	sc, err := woha.ParseSchedulerConfig(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("ParseSchedulerConfig: %v", err)
	}
	return sc
}

func TestParseSchedulerConfig(t *testing.T) {
	sc := parseSC(t, `
<workflow-scheduler>
  <scheduler>WOHA</scheduler>
  <plan-generator>HLF</plan-generator>
  <queue>Det</queue>
  <plan-margin>0.9</plan-margin>
</workflow-scheduler>`)
	if sc.Scheduler != "WOHA" || sc.PlanGenerator != "HLF" || sc.Queue != "Det" || sc.PlanMargin != 0.9 {
		t.Errorf("parsed %+v", sc)
	}
}

func TestParseSchedulerConfigDefaults(t *testing.T) {
	sc := parseSC(t, `<workflow-scheduler><scheduler>WOHA</scheduler></workflow-scheduler>`)
	if sc.PlanMargin != 0.85 {
		t.Errorf("default margin = %v, want 0.85", sc.PlanMargin)
	}
}

func TestParseSchedulerConfigErrors(t *testing.T) {
	bad := []string{
		`not xml`,
		`<workflow-scheduler/>`,
		`<workflow-scheduler><scheduler>Mystery</scheduler></workflow-scheduler>`,
		`<workflow-scheduler><scheduler>WOHA</scheduler><plan-generator>EDF</plan-generator></workflow-scheduler>`,
		`<workflow-scheduler><scheduler>WOHA</scheduler><plan-margin>1.5</plan-margin></workflow-scheduler>`,
	}
	for i, doc := range bad {
		if _, err := woha.ParseSchedulerConfig(strings.NewReader(doc)); err == nil {
			t.Errorf("config %d accepted: %s", i, doc)
		}
	}
}

func TestSessionFromConfigRunsWOHA(t *testing.T) {
	sc := parseSC(t, `
<workflow-scheduler>
  <scheduler>WOHA</scheduler>
  <plan-generator>LPF</plan-generator>
  <queue>BST</queue>
</workflow-scheduler>`)
	sess, err := woha.NewSessionFromConfig(woha.ClusterConfig{
		Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
	}, sc, woha.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(etl(t, "w", time.Hour)); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "WOHA-LPF" {
		t.Errorf("Policy = %q, want WOHA-LPF", res.Policy)
	}
	if !res.Workflows[0].Met {
		t.Error("missed a generous deadline")
	}
}

func TestSessionFromConfigRunsBaseline(t *testing.T) {
	sc := parseSC(t, `<workflow-scheduler><scheduler>EDF</scheduler></workflow-scheduler>`)
	sess, err := woha.NewSessionFromConfig(woha.ClusterConfig{
		Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
	}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(etl(t, "w", time.Hour)); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "EDF" {
		t.Errorf("Policy = %q, want EDF", res.Policy)
	}
}

func TestSessionFromConfigBadQueue(t *testing.T) {
	sc := &woha.SchedulerConfig{Scheduler: "WOHA", PlanGenerator: "LPF", Queue: "Btree", PlanMargin: 0.85}
	if _, err := woha.NewSessionFromConfig(woha.ClusterConfig{
		Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
	}, sc); err == nil {
		t.Error("unknown queue accepted")
	}
}
