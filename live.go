package woha

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/live"
)

// LiveConfig configures the concurrent mini-Hadoop (see internal/live): the
// same schedulers running against goroutine TaskTrackers that report over
// real heartbeat messages instead of discrete events.
type LiveConfig = live.Config

// LiveResult is the outcome of a live run.
type LiveResult = live.Result

// LiveSession wires the live cluster to a scheduler, mirroring Session.
type LiveSession struct {
	cfg     ClusterConfig
	liveCfg LiveConfig
	prio    PriorityPolicy
	cluster *live.Cluster
	margin  float64
	ins     *Instrumentation
}

// NewLiveSession creates a live session. Set UseTCP to route heartbeats over
// a real TCP loopback connection via net/rpc.
func NewLiveSession(cfg LiveConfig, sched Scheduler, useTCP bool, opts ...SessionOption) (*LiveSession, error) {
	o := sessionOptions{margin: 0.85}
	for _, opt := range opts {
		opt(&o)
	}
	pol := o.policy
	if pol == nil {
		var err error
		pol, err = sched.newPolicy(o.seed, o.obs)
		if err != nil {
			return nil, err
		}
	}
	pol = cluster.InstrumentPolicy(pol, o.obs)
	// The JobTracker reads its instrumentation from the config.
	cfg.Obs = o.obs
	var (
		c   *live.Cluster
		err error
	)
	if useTCP {
		c, err = live.NewTCP(cfg, pol)
	} else {
		c, err = live.New(cfg, pol)
	}
	if err != nil {
		return nil, err
	}
	return &LiveSession{
		cfg: ClusterConfig{
			Nodes:              cfg.Nodes,
			MapSlotsPerNode:    cfg.MapSlotsPerNode,
			ReduceSlotsPerNode: cfg.ReduceSlotsPerNode,
		},
		liveCfg: cfg,
		prio:    sched.priorityFor(),
		cluster: c,
		margin:  o.margin,
		ins:     o.obs,
	}, nil
}

// Submit queues a workflow, generating its plan client-side under WOHA
// schedulers.
func (s *LiveSession) Submit(w *Workflow) error {
	var p *Plan
	if s.prio != nil {
		var err error
		p, err = GeneratePlanTyped(w, s.cfg.MapSlots(), s.cfg.ReduceSlots(), s.prio, s.margin)
		if err != nil {
			return fmt.Errorf("woha: %w", err)
		}
		s.ins.PlanGenerated(w.Release, w.Name, p.SearchIters)
	}
	if err := s.cluster.Submit(w, p); err != nil {
		return fmt.Errorf("woha: %w", err)
	}
	return nil
}

// Run executes the live cluster until every workflow completes or ctx ends,
// then releases any TCP transport.
func (s *LiveSession) Run(ctx context.Context) (*LiveResult, error) {
	res, err := s.cluster.Run(ctx)
	if cerr := s.cluster.CloseTransport(); err == nil && cerr != nil {
		err = fmt.Errorf("woha: closing transport: %w", cerr)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}
