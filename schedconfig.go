package woha

import (
	"encoding/xml"
	"fmt"
	"io"

	"repro/internal/core"
)

// SchedulerConfig mirrors the paper's workflow-scheduler.xml: the WOHA
// release lets operators swap the Workflow Scheduler and the Scheduling Plan
// Generator by editing a two-line configuration file. This reproduction's
// equivalent selects the scheduler, the intra-workflow priority policy, and
// the WOHA engine options.
//
// Example document:
//
//	<workflow-scheduler>
//	  <scheduler>WOHA</scheduler>
//	  <plan-generator>LPF</plan-generator>
//	  <queue>DSL</queue>
//	  <plan-margin>0.85</plan-margin>
//	</workflow-scheduler>
type SchedulerConfig struct {
	// Scheduler is "WOHA", "FIFO", "Fair", or "EDF".
	Scheduler string
	// PlanGenerator is the intra-workflow priority for WOHA: "HLF", "LPF",
	// or "MPF".
	PlanGenerator string
	// Queue is the WOHA queue backend: "DSL" (default), "BST", "Naive",
	// or "Det".
	Queue string
	// PlanMargin is the plan safety margin (default 0.85).
	PlanMargin float64
}

type xmlSchedConfig struct {
	XMLName       xml.Name `xml:"workflow-scheduler"`
	Scheduler     string   `xml:"scheduler"`
	PlanGenerator string   `xml:"plan-generator"`
	Queue         string   `xml:"queue"`
	PlanMargin    float64  `xml:"plan-margin"`
}

// ParseSchedulerConfig reads a workflow-scheduler.xml document.
func ParseSchedulerConfig(r io.Reader) (*SchedulerConfig, error) {
	var doc xmlSchedConfig
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("woha: parsing scheduler config: %w", err)
	}
	cfg := &SchedulerConfig{
		Scheduler:     doc.Scheduler,
		PlanGenerator: doc.PlanGenerator,
		Queue:         doc.Queue,
		PlanMargin:    doc.PlanMargin,
	}
	if cfg.Scheduler == "" {
		return nil, fmt.Errorf("woha: scheduler config missing <scheduler>")
	}
	if cfg.PlanMargin == 0 {
		cfg.PlanMargin = 0.85
	}
	if cfg.PlanMargin < 0 || cfg.PlanMargin > 1 {
		return nil, fmt.Errorf("woha: plan-margin %v outside (0, 1]", cfg.PlanMargin)
	}
	if _, err := cfg.resolve(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// resolve maps the config to a session scheduler name.
func (c *SchedulerConfig) resolve() (Scheduler, error) {
	switch c.Scheduler {
	case "FIFO":
		return SchedulerFIFO, nil
	case "Fair":
		return SchedulerFair, nil
	case "EDF":
		return SchedulerEDF, nil
	case "WOHA":
		gen := c.PlanGenerator
		if gen == "" {
			gen = "LPF"
		}
		switch gen {
		case "LPF":
			return SchedulerWOHALPF, nil
		case "HLF":
			return SchedulerWOHAHLF, nil
		case "MPF":
			return SchedulerWOHAMPF, nil
		default:
			return "", fmt.Errorf("woha: unknown plan generator %q (want HLF, LPF, or MPF)", gen)
		}
	default:
		return "", fmt.Errorf("woha: unknown scheduler %q (want WOHA, FIFO, Fair, or EDF)", c.Scheduler)
	}
}

// queueKind maps the config's queue name.
func (c *SchedulerConfig) queueKind() (core.QueueKind, error) {
	switch c.Queue {
	case "", "DSL":
		return core.QueueDSL, nil
	case "BST":
		return core.QueueBST, nil
	case "Naive":
		return core.QueueNaive, nil
	case "Det":
		return core.QueueDet, nil
	default:
		return 0, fmt.Errorf("woha: unknown queue backend %q (want DSL, BST, Naive, or Det)", c.Queue)
	}
}

// NewSessionFromConfig builds a session for a cluster using the parsed
// workflow-scheduler.xml configuration.
func NewSessionFromConfig(cluster ClusterConfig, sc *SchedulerConfig, opts ...SessionOption) (*Session, error) {
	sched, err := sc.resolve()
	if err != nil {
		return nil, err
	}
	qk, err := sc.queueKind()
	if err != nil {
		return nil, err
	}
	all := []SessionOption{WithPlanMargin(sc.PlanMargin)}
	all = append(all, opts...)
	if prio := sched.priorityFor(); prio != nil {
		// Build the WOHA engine explicitly so the queue backend applies,
		// then let the session generate plans as usual.
		o := sessionOptions{margin: sc.PlanMargin}
		for _, opt := range all {
			opt(&o)
		}
		pol := core.NewScheduler(core.Options{
			Queue:      qk,
			Seed:       o.seed,
			PolicyName: prio.Name(),
		})
		sess, err := NewSession(cluster, sched, append(all, WithPolicy(pol))...)
		if err != nil {
			return nil, err
		}
		// WithPolicy normally disables automatic plan generation (custom
		// policies bring their own submission pipeline); a config-built
		// WOHA engine still wants session-generated plans.
		sess.prio = prio
		sess.opts.policy = nil
		return sess, nil
	}
	return NewSession(cluster, sched, all...)
}
