package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	woha "repro"
)

// TestPostmortemSmoke forces a deterministic deadline miss and asserts the
// attribution pipeline end to end: two identical workflows, each feasible
// standalone on a 1-map-slot cluster, compete for the same slot, so at least
// one must fall behind its plan and miss. The resulting report must be
// schema-valid JSON naming the missed workflow, its first unmet progress
// requirement F_i, and the critical-path stage.
func TestPostmortemSmoke(t *testing.T) {
	const tightXML = `<workflow name="tight" deadline="400s">
  <job name="crunch" maps="5" reduces="1" map-time="60s" reduce-time="30s"><output>/x</output></job>
</workflow>`
	dir := t.TempDir()
	xmlPath := filepath.Join(dir, "tight.xml")
	if err := os.WriteFile(xmlPath, []byte(tightXML), 0o644); err != nil {
		t.Fatal(err)
	}
	parse := func() *woha.Workflow {
		f, err := os.Open(xmlPath)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		w, err := woha.ParseWorkflowXML(f)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	flows := []*woha.Workflow{parse(), parse()}

	ring := woha.NewEventRing(1 << 20)
	ins := woha.NewInstrumentation(nil, ring)
	ins.EnableHealth(woha.HealthConfig{})
	pl := planOpts{workers: 1, cache: 16}.shared(ins)
	pm := &postmortemCapture{path: filepath.Join(dir, "postmortem.json"), ring: ring}
	cfg := woha.ClusterConfig{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, Seed: 1}
	if err := pm.addSpecs(flows, "WOHA-LPF", cfg.MapSlots(), cfg.ReduceSlots(), pl); err != nil {
		t.Fatal(err)
	}
	sess, err := woha.NewSession(cfg, woha.SchedulerWOHALPF,
		woha.WithSeed(cfg.Seed), woha.WithInstrumentation(ins), woha.WithPlanner(pl))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SubmitAll(flows); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses() == 0 {
		t.Fatal("contended scenario did not force a deadline miss")
	}

	var out strings.Builder
	if err := pm.write(&out); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(pm.path)
	if err != nil {
		t.Fatal(err)
	}
	var rep woha.PostmortemReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != "woha-postmortem/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Workflows != 2 || len(rep.Missed) == 0 {
		t.Fatalf("report = %d workflows, %d missed; want 2 workflows and a non-empty miss list", rep.Workflows, len(rep.Missed))
	}
	for _, m := range rep.Missed {
		if m.Name != "tight" {
			t.Errorf("miss names workflow %q, want \"tight\"", m.Name)
		}
		if m.TardinessUS <= 0 {
			t.Errorf("wf %d tardiness = %d, want > 0", m.Workflow, m.TardinessUS)
		}
		if len(m.CriticalPath) == 0 {
			t.Fatalf("wf %d has no critical path", m.Workflow)
		}
		if st := m.CriticalPath[len(m.CriticalPath)-1].Stage; st != "map" && st != "reduce" {
			t.Errorf("critical-path stage = %q", st)
		}
		if m.Blame == nil || m.Blame.Reason == "" {
			t.Errorf("wf %d has no blame verdict", m.Workflow)
		}
	}
	// At least one loser violated a plan requirement on the way down.
	sawUnmet := false
	for _, m := range rep.Missed {
		if m.FirstUnmetReq != nil {
			sawUnmet = true
			if m.FirstUnmetReq.Deficit <= 0 {
				t.Errorf("unmet req has non-positive deficit: %+v", m.FirstUnmetReq)
			}
		}
	}
	if !sawUnmet {
		t.Error("no missed workflow reports a first unmet F_i")
	}
	// The text summary names the same attribution.
	for _, want := range []string{`"tight"`, "first unmet requirement", "critical path", "blame"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text summary missing %q:\n%s", want, out.String())
		}
	}
}
