package main

import (
	"strings"
	"testing"
	"time"

	woha "repro"
)

// TestAdmissionSmoke overloads a small cluster behind the feasibility front
// door and asserts the refusal surface end to end: the seeded workload
// produces at least one rejection, every rejection names the refusing stage
// and carries a counter-offer past the asked deadline, and every admitted
// workflow meets its deadline (the trade-off the front door exists to buy).
func TestAdmissionSmoke(t *testing.T) {
	cfg := woha.ClusterConfig{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Seed: 1}
	ins := woha.NewInstrumentation(nil, nil)
	ao := admissionOpts{mode: "feasible"}
	adm, _, err := ao.controller(cfg.MapSlots(), cfg.ReduceSlots(), ins)
	if err != nil {
		t.Fatal(err)
	}
	var flows []*woha.Workflow
	for i := 0; i < 4; i++ {
		rel := time.Duration(i) * 50 * time.Second
		flows = append(flows, woha.NewWorkflow("w"+string(rune('1'+i))).
			Job("crunch", 8, 2, 100*time.Second, 100*time.Second).
			MustBuild(woha.At(rel), woha.At(rel+600*time.Second)))
	}
	sess, err := woha.NewSession(cfg, woha.SchedulerWOHALPF,
		woha.WithSeed(cfg.Seed), woha.WithInstrumentation(ins), woha.WithAdmission(adm))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SubmitAll(flows); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejections() == 0 {
		t.Fatalf("seeded overload produced no rejections: %+v", res.Workflows)
	}
	for _, w := range res.Workflows {
		if w.Rejected {
			if w.RejectReason == "" {
				t.Errorf("%s: rejection without a reason", w.Name)
			}
			if w.CounterOffer <= w.Deadline {
				t.Errorf("%s: counter-offer %v not past the asked deadline %v", w.Name, w.CounterOffer, w.Deadline)
			}
			if got := outcomeLabel(w, "no"); !strings.Contains(got, "REJECTED") || !strings.Contains(got, "counter-offer") {
				t.Errorf("%s: outcome label %q missing refusal fields", w.Name, got)
			}
			continue
		}
		if !w.Met {
			t.Errorf("%s: admitted but missed its deadline by %v", w.Name, w.Tardiness)
		}
	}
	if res.AdmittedMissRatio() != 0 {
		t.Errorf("AdmittedMissRatio = %v, want 0", res.AdmittedMissRatio())
	}
}
