// Command wohasim runs one workload on the simulated Hadoop cluster under a
// chosen workflow scheduler and reports per-workflow outcomes.
//
// Workloads:
//
//	-workload fig7     the paper's 33-job demo topology x3 (the Fig 11 setup)
//	-workload yahoo    the 61-workflow Yahoo-derived population (Fig 8 setup)
//	-workload x.xml    one workflow from an XML configuration file
//
// Example:
//
//	wohasim -workload fig7 -scheduler WOHA-LPF -nodes 32
//	wohasim -workload my-pipeline.xml -scheduler EDF -timeline out.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	woha "repro"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/live"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "fig7", "fig7, yahoo, or a workflow XML file")
		schedName    = flag.String("scheduler", "WOHA-LPF", "EDF, FIFO, Fair, WOHA-LPF, WOHA-HLF, or WOHA-MPF")
		nodes        = flag.Int("nodes", 32, "number of TaskTrackers")
		mapSlots     = flag.Int("map-slots", 2, "map slots per node")
		reduceSlots  = flag.Int("reduce-slots", 1, "reduce slots per node")
		heartbeat    = flag.Duration("heartbeat", 0, "heartbeat interval (0 = instant dispatch)")
		submitter    = flag.Duration("submitter", 0, "submitter-job overhead per wjob activation")
		noise        = flag.Float64("noise", 0, "task duration noise fraction in [0,1)")
		seed         = flag.Int64("seed", 1, "PRNG seed")
		timeline     = flag.String("timeline", "", "write map-slot allocation CSV to this file")
		liveMode     = flag.Bool("live", false, "run on the concurrent live mini-Hadoop instead of the discrete-event simulator")
		timeScale    = flag.Float64("time-scale", 0.001, "live mode: wall seconds per virtual second")
		shards       = flag.Int("shards", 0, "live mode: JobTracker workflow-state shards (0 = one per core, 1 = legacy single-mutex tracker)")
		metricsAddr  = flag.String("metrics-addr", "", "serve the introspection plane (/metrics, /statusz, /debug/pprof) on this address during the run (e.g. :8080; :0 picks a free port) and print a final scrape")
		postmortem   = flag.String("postmortem", "", "write a miss root-cause report (JSON) to this file after the run and print a text summary")
		healthInt    = flag.Duration("health-interval", 30*time.Second, "virtual-time interval between deadline-health snapshots when instrumentation is active (0 disables)")
		planWorkers  = flag.Int("plan-workers", 1, "concurrent Algorithm 1 probes per plan search (0 = one per core)")
		planCache    = flag.Int("plan-cache", 0, "structural plan cache capacity (0 = disabled)")
		replicas     = flag.Int("replicas", 1, "replay the run once per seed (seed, seed+1, ...) and report per-seed outcomes")
		replicaWork  = flag.Int("replica-workers", 0, "concurrent replicas (0 = one per core, 1 = serial; results identical either way)")
		admMode      = flag.String("admission", "", "front-door admission controller: always, feasible, or token-bucket (empty = no front door, the seed behaviour)")
		admTenants   = flag.String("tenants", "", "per-tenant admission policies, e.g. \"t1:rate=6,burst=2,quota=0.5,tier=0;t2:quota=0.25,tier=1\"; workflows are assigned tenants round-robin")
		clusters     = flag.Int("clusters", 1, "federate the run across this many member clusters, each with -nodes nodes (>1 selects the federation path)")
		routerName   = flag.String("router", "slack", "federation workflow router: round-robin, least-loaded, or slack")
		snapRefresh  = flag.Duration("snapshot-refresh", 0, "federation: oldest member load snapshot the router may decide on (0 = refreshed before every decision)")
	)
	flag.Parse()
	po := planOpts{workers: *planWorkers, cache: *planCache}
	ao := admissionOpts{mode: *admMode, tenants: *admTenants}

	if *postmortem != "" && *replicas > 1 {
		fmt.Fprintln(os.Stderr, "wohasim: -postmortem records a single run; drop it or -replicas")
		os.Exit(1)
	}
	if ao.mode != "" && *replicas > 1 {
		fmt.Fprintln(os.Stderr, "wohasim: -admission controllers are stateful per-run; drop it or -replicas")
		os.Exit(1)
	}
	if *clusters < 1 {
		fmt.Fprintln(os.Stderr, "wohasim: -clusters must be >= 1")
		os.Exit(1)
	}
	if *clusters > 1 && (*liveMode || *replicas > 1 || *timeline != "" || *postmortem != "" || ao.mode != "") {
		fmt.Fprintln(os.Stderr, "wohasim: -clusters federates the discrete-event simulator only; drop -live, -replicas, -timeline, -postmortem, and -admission")
		os.Exit(1)
	}

	var (
		ins  *woha.Instrumentation
		srv  *woha.IntrospectionServer
		pm   *postmortemCapture
		ring *woha.EventRing
	)
	if *metricsAddr != "" || *postmortem != "" {
		var reg *woha.Metrics
		if *metricsAddr != "" {
			reg = woha.NewMetrics()
		}
		// Box the ring into the sink interface only when it exists: a
		// typed-nil EventSink would defeat the emit path's nil check.
		var sink woha.EventSink
		if *postmortem != "" {
			ring = woha.NewEventRing(1 << 20)
			pm = &postmortemCapture{path: *postmortem, ring: ring}
			sink = ring
		}
		ins = woha.NewInstrumentation(reg, sink)
		if *healthInt > 0 {
			ins.EnableHealth(woha.HealthConfig{Interval: *healthInt})
		}
	}
	if *metricsAddr != "" {
		var err error
		srv, err = woha.ServeIntrospection(*metricsAddr, ins)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wohasim:", err)
			os.Exit(1)
		}
		fmt.Printf("introspection: serving http://%s/metrics, /statusz, /debug/pprof/\n", srv.Addr())
	}

	pl := po.shared(ins)

	if *liveMode {
		if err := runLive(*workloadName, *schedName, *nodes, *mapSlots, *reduceSlots, *shards, *timeScale, ins, pl, pm, ao); err != nil {
			fmt.Fprintln(os.Stderr, "wohasim:", err)
			os.Exit(1)
		}
		if err := pm.write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wohasim:", err)
			os.Exit(1)
		}
		if err := stopIntrospection(srv); err != nil {
			fmt.Fprintln(os.Stderr, "wohasim:", err)
			os.Exit(1)
		}
		return
	}

	cfg := woha.ClusterConfig{
		Nodes:              *nodes,
		MapSlotsPerNode:    *mapSlots,
		ReduceSlotsPerNode: *reduceSlots,
		HeartbeatInterval:  *heartbeat,
		SubmitterOverhead:  *submitter,
		Noise:              *noise,
		Seed:               *seed,
	}
	var err error
	switch {
	case *clusters > 1:
		err = runFederation(*workloadName, *schedName, cfg, *clusters, *routerName, *snapRefresh, ins, pl)
	case *replicas > 1:
		if *timeline != "" {
			err = fmt.Errorf("-timeline records a single run; drop it or -replicas")
		} else {
			err = runReplicas(*workloadName, *schedName, cfg, *replicas, *replicaWork, ins, pl)
		}
	default:
		err = run(*workloadName, *schedName, cfg, *timeline, ins, pl, pm, ao)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wohasim:", err)
		os.Exit(1)
	}
	if err := pm.write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wohasim:", err)
		os.Exit(1)
	}
	if err := stopIntrospection(srv); err != nil {
		fmt.Fprintln(os.Stderr, "wohasim:", err)
		os.Exit(1)
	}
}

// stopIntrospection prints the final scrape — through the real listener,
// proving the exposition is served, not just renderable — and then drains the
// server gracefully so in-flight scrapes finish before the listener closes.
func stopIntrospection(s *woha.IntrospectionServer) error {
	if s == nil {
		return nil
	}
	if err := s.DumpMetrics(os.Stdout); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// postmortemCapture buffers the run's event stream plus per-workflow specs
// and plans so the miss root-cause report can be reconstructed after the run.
type postmortemCapture struct {
	path  string
	ring  *woha.EventRing
	specs []woha.PostmortemSpec
}

// addSpecs records one spec per workflow in submission order, attaching the
// WOHA progress plan when the scheduler consults one. The shared planner
// coalesces these probes with the session's own, so with a cache enabled the
// plan costs nothing extra.
func (pc *postmortemCapture) addSpecs(flows []*woha.Workflow, schedName string, maps, reds int, pl *woha.Planner) error {
	if pc == nil {
		return nil
	}
	spec, err := experiments.SchedulerByName(schedName)
	if err != nil {
		return err
	}
	for i, w := range flows {
		s := woha.PostmortemSpec{Workflow: i, Spec: w}
		if spec.IsWOHA() {
			p, err := pl.Plan(w, plan.Caps{Maps: maps, Reduces: reds}, spec.Priority)
			if err != nil {
				return err
			}
			s.Plan = p
		}
		pc.specs = append(pc.specs, s)
	}
	return nil
}

// write analyzes the captured stream, writes the JSON report, and prints the
// text summary.
func (pc *postmortemCapture) write(out io.Writer) error {
	if pc == nil {
		return nil
	}
	rep := woha.AnalyzePostmortem(pc.ring.Events(), pc.specs)
	f, err := os.Create(pc.path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "postmortem report written to %s\n", pc.path)
	return rep.WriteText(out)
}

// planOpts carries the planner tuning flags: concurrent probes per cap
// search (0 = one per core) and structural cache capacity (0 = off).
type planOpts struct {
	workers, cache int
}

// shared builds the one coalescing plan service every wohasim path uses:
// sessions receive it via WithPlanner, replica sweeps share its cache across
// seeds, and live mode generates through it directly — so each distinct
// (shape, caps, policy) key costs one simulation process-wide.
func (po planOpts) shared(ins *woha.Instrumentation) *woha.Planner {
	return woha.NewPlanner(
		woha.WithPlannerWorkers(po.workers),
		woha.WithPlanCache(po.cache),
		woha.WithPlanMargin(experiments.PlanMargin),
		woha.WithInstrumentation(ins),
	)
}

func run(workloadName, schedName string, cfg woha.ClusterConfig, timelinePath string, ins *woha.Instrumentation, pl *woha.Planner, pm *postmortemCapture, ao admissionOpts) error {
	flows, err := buildWorkload(workloadName)
	if err != nil {
		return err
	}
	adm, tenantNames, err := ao.controller(cfg.MapSlots(), cfg.ReduceSlots(), ins)
	if err != nil {
		return err
	}
	assignTenants(flows, tenantNames)
	if err := pm.addSpecs(flows, schedName, cfg.MapSlots(), cfg.ReduceSlots(), pl); err != nil {
		return err
	}

	var tl *metrics.Timeline
	opts := []woha.SessionOption{woha.WithSeed(cfg.Seed), woha.WithInstrumentation(ins), woha.WithPlanner(pl), woha.WithAdmission(adm)}
	if timelinePath != "" {
		tl = woha.NewTimeline()
		opts = append(opts, woha.WithObserver(tl))
	}
	sess, err := woha.NewSession(cfg, woha.Scheduler(schedName), opts...)
	if err != nil {
		return err
	}
	if err := sess.SubmitAll(flows); err != nil {
		return err
	}
	res, err := sess.Run()
	if err != nil {
		return err
	}

	fmt.Printf("scheduler %s on %d nodes (%d map + %d reduce slots), %d workflows, %d tasks\n",
		res.Policy, cfg.Nodes, cfg.MapSlots(), cfg.ReduceSlots(), len(res.Workflows), res.TasksStarted)
	fmt.Printf("%-12s %10s %10s %10s %10s  %s\n", "workflow", "release", "deadline", "finish", "workspan", "met")
	for _, w := range res.Workflows {
		fmt.Printf("%-12s %10.0fs %10.0fs %10.0fs %10.0fs  %s\n",
			w.Name, w.Release.Seconds(), w.Deadline.Seconds(), w.Finish.Seconds(), w.Workspan.Seconds(),
			outcomeLabel(w, "yes"))
	}
	fmt.Printf("misses %d/%d (%.1f%%), max tardiness %v, total tardiness %v, utilization %.3f, makespan %v\n",
		res.DeadlineMisses(), len(res.Workflows), 100*res.MissRatio(),
		res.MaxTardiness().Round(time.Second), res.TotalTardiness().Round(time.Second),
		res.Utilization(), res.Makespan.Duration().Round(time.Second))
	printAdmissionSummary(adm, res.Workflows)

	if tl != nil {
		f, err := os.Create(timelinePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tl.WriteCSV(f, woha.MapSlot); err != nil {
			return err
		}
		fmt.Printf("map-slot timeline written to %s\n", timelinePath)
	}
	return nil
}

// runReplicas replays the workload once per seed (cfg.Seed, cfg.Seed+1, ...)
// through the parallel runner and reports the per-seed outcome spread.
func runReplicas(workloadName, schedName string, cfg woha.ClusterConfig, replicas, workers int, ins *woha.Instrumentation, pl *woha.Planner) error {
	flows, err := buildWorkload(workloadName)
	if err != nil {
		return err
	}
	seeds := make([]int64, replicas)
	for i := range seeds {
		seeds[i] = cfg.Seed + int64(i)
	}
	opts := []woha.SessionOption{woha.WithInstrumentation(ins), woha.WithPlanner(pl)}
	results, err := woha.RunSeeds(cfg, woha.Scheduler(schedName), flows, seeds, workers, opts...)
	if err != nil {
		return err
	}

	fmt.Printf("scheduler %s on %d nodes (%d map + %d reduce slots), %d workflows, %d replicas\n",
		schedName, cfg.Nodes, cfg.MapSlots(), cfg.ReduceSlots(), len(flows), replicas)
	fmt.Printf("%-8s %8s %14s %14s %12s %10s\n", "seed", "misses", "max-tard", "total-tard", "makespan", "util")
	var missSum int
	var tardSum time.Duration
	for i, res := range results {
		missSum += res.DeadlineMisses()
		tardSum += res.TotalTardiness()
		fmt.Printf("%-8d %5d/%-2d %13.0fs %13.0fs %11.0fs %10.3f\n",
			seeds[i], res.DeadlineMisses(), len(res.Workflows),
			res.MaxTardiness().Seconds(), res.TotalTardiness().Seconds(),
			res.Makespan.Duration().Seconds(), res.Utilization())
	}
	fmt.Printf("mean: %.2f misses, %.0fs total tardiness over %d seeds\n",
		float64(missSum)/float64(replicas), tardSum.Seconds()/float64(replicas), replicas)
	return nil
}

// runLive executes the workload on the concurrent mini-Hadoop.
func runLive(workloadName, schedName string, nodes, mapSlots, reduceSlots, shards int, timeScale float64, ins *woha.Instrumentation, pl *woha.Planner, pm *postmortemCapture, ao admissionOpts) error {
	flows, err := buildWorkload(workloadName)
	if err != nil {
		return err
	}
	spec, err := experiments.SchedulerByName(schedName)
	if err != nil {
		return err
	}
	adm, tenantNames, err := ao.controller(nodes*mapSlots, nodes*reduceSlots, ins)
	if err != nil {
		return err
	}
	assignTenants(flows, tenantNames)
	cfg := live.Config{
		Nodes:              nodes,
		MapSlotsPerNode:    mapSlots,
		ReduceSlotsPerNode: reduceSlots,
		HeartbeatInterval:  5 * time.Millisecond,
		TimeScale:          timeScale,
		Shards:             shards,
		Obs:                ins,
		Admission:          adm,
	}
	c, err := live.New(cfg, cluster.InstrumentPolicy(spec.New(1), ins))
	if err != nil {
		return err
	}
	for i, w := range flows {
		var p *plan.Plan
		if spec.IsWOHA() {
			p, err = pl.Plan(w, plan.Caps{Maps: nodes * mapSlots, Reduces: nodes * reduceSlots}, spec.Priority)
			if err != nil {
				return err
			}
			ins.PlanGenerated(w.Release, w.Name, p.SearchIters)
		}
		if err := c.Submit(w, p); err != nil {
			return err
		}
		if pm != nil {
			pm.specs = append(pm.specs, woha.PostmortemSpec{Workflow: i, Spec: w, Plan: p})
		}
	}
	start := time.Now()
	res, err := c.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("live run under %s: %d workflows, %d tasks, wall time %v\n",
		res.Policy, len(res.Workflows), res.TasksStarted, time.Since(start).Round(time.Millisecond))
	virtualHB := time.Duration(float64(cfg.HeartbeatInterval) / timeScale)
	fmt.Printf("  (5ms wall heartbeats = %v of virtual dispatch latency at this time scale;\n"+
		"   pick -time-scale so that is ~3s to emulate Hadoop's heartbeat period)\n",
		virtualHB.Round(time.Second))
	for _, w := range res.Workflows {
		fmt.Printf("  %-12s workspan %10v (virtual)  %s\n", w.Name, w.Workspan.Round(time.Second), outcomeLabel(w, "met"))
	}
	printAdmissionSummary(adm, res.Workflows)
	return nil
}

func buildWorkload(name string) ([]*woha.Workflow, error) {
	switch name {
	case "fig7":
		return experiments.DefaultFig11Config().Flows(), nil
	case "yahoo":
		flows, err := workload.Yahoo(workload.DefaultYahooConfig())
		if err != nil {
			return nil, err
		}
		return workload.MultiJob(flows), nil
	default:
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		w, err := woha.ParseWorkflowXML(f)
		if err != nil {
			return nil, err
		}
		return []*woha.Workflow{w}, nil
	}
}
