package main

import (
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	woha "repro"
)

const simXML = `<workflow name="w" deadline="30m">
  <job name="a" maps="8" reduces="2" map-time="20s" reduce-time="1m"><output>/s</output></job>
  <job name="b" maps="4" reduces="1" map-time="20s" reduce-time="1m"><input>/s</input></job>
</workflow>`

func writeXML(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "w.xml")
	if err := os.WriteFile(path, []byte(simXML), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func clusterCfg() woha.ClusterConfig {
	return woha.ClusterConfig{Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Seed: 1}
}

func TestRunXMLWorkload(t *testing.T) {
	timeline := filepath.Join(t.TempDir(), "tl.csv")
	if err := run(writeXML(t), "WOHA-LPF", clusterCfg(), timeline, nil, planOpts{workers: 1}.shared(nil), nil, admissionOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(timeline); err != nil {
		t.Errorf("timeline not written: %v", err)
	}
}

func TestRunXMLWorkloadParallelCachedPlans(t *testing.T) {
	// Same workload through the parallel, cached planner path.
	if err := run(writeXML(t), "WOHA-LPF", clusterCfg(), "", nil, planOpts{workers: 4, cache: 32}.shared(nil), nil, admissionOpts{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent.xml", "WOHA-LPF", clusterCfg(), "", nil, planOpts{}.shared(nil), nil, admissionOpts{}); err == nil {
		t.Error("missing workload accepted")
	}
	if err := run(writeXML(t), "Mystery", clusterCfg(), "", nil, planOpts{}.shared(nil), nil, admissionOpts{}); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestRunLiveXMLWorkload(t *testing.T) {
	// Run the XML workload on the live mini-Hadoop at a steep compression,
	// once per control-plane layout (-shards 1 legacy, -shards 2 sharded).
	for _, shards := range []int{1, 2} {
		start := time.Now()
		if err := runLive(writeXML(t), "FIFO", 4, 2, 1, shards, 0.00005, nil, planOpts{workers: 1}.shared(nil), nil, admissionOpts{}); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if time.Since(start) > 20*time.Second {
			t.Errorf("shards=%d: live run took %v", shards, time.Since(start))
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	// -metrics-addr :0 equivalent: serve on an ephemeral port, run an
	// instrumented simulation, then scrape the endpoint over real HTTP.
	reg := woha.NewMetrics()
	ins := woha.NewInstrumentation(reg, nil)
	ins.EnableHealth(woha.HealthConfig{})
	srv, err := woha.ServeIntrospection("127.0.0.1:0", ins)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	if err := run(writeXML(t), "WOHA-LPF", clusterCfg(), "", ins, planOpts{workers: 2, cache: 8}.shared(ins), nil, admissionOpts{}); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := srv.DumpMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	scrape := buf.String()
	for _, name := range []string{
		"woha_heartbeat_duration_seconds",
		"woha_tasks_assigned_total",
		"woha_workflows_deadline_missed_total",
		"woha_planner_plans_total",
		"woha_planner_cache_misses_total",
		"woha_build_info",
		"woha_health_min_slack_tasks",
	} {
		if !strings.Contains(scrape, name) {
			t.Errorf("scrape missing %s", name)
		}
	}
	// The run assigned tasks, so the counter must be non-zero.
	if !regexp.MustCompile(`(?m)^woha_tasks_assigned_total [1-9]`).MatchString(scrape) {
		t.Errorf("woha_tasks_assigned_total not incremented:\n%s", scrape)
	}
	if !strings.Contains(scrape, "# TYPE woha_heartbeat_duration_seconds histogram") {
		t.Errorf("heartbeat histogram TYPE line missing:\n%s", scrape)
	}
}
