package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	woha "repro"
)

const simXML = `<workflow name="w" deadline="30m">
  <job name="a" maps="8" reduces="2" map-time="20s" reduce-time="1m"><output>/s</output></job>
  <job name="b" maps="4" reduces="1" map-time="20s" reduce-time="1m"><input>/s</input></job>
</workflow>`

func writeXML(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "w.xml")
	if err := os.WriteFile(path, []byte(simXML), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func clusterCfg() woha.ClusterConfig {
	return woha.ClusterConfig{Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Seed: 1}
}

func TestRunXMLWorkload(t *testing.T) {
	timeline := filepath.Join(t.TempDir(), "tl.csv")
	if err := run(writeXML(t), "WOHA-LPF", clusterCfg(), timeline); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(timeline); err != nil {
		t.Errorf("timeline not written: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent.xml", "WOHA-LPF", clusterCfg(), ""); err == nil {
		t.Error("missing workload accepted")
	}
	if err := run(writeXML(t), "Mystery", clusterCfg(), ""); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestRunLiveXMLWorkload(t *testing.T) {
	// Run the XML workload on the live mini-Hadoop at a steep compression.
	start := time.Now()
	if err := runLive(writeXML(t), "FIFO", 4, 2, 1, 0.00005); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 20*time.Second {
		t.Errorf("live run took %v", time.Since(start))
	}
}
