package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	woha "repro"
	"repro/internal/plan"
)

// admissionOpts carries the front-door flags: the controller mode and the
// per-tenant policy spec.
type admissionOpts struct {
	mode    string // "", always, feasible, or token-bucket
	tenants string // "t1:rate=6,burst=2,quota=0.5,tier=1;t2:quota=0.25"
}

// controller builds the admission controller the flags select, plus the
// tenant names (in spec order) for round-robin workflow assignment. All three
// results are zero when no front door was requested.
func (ao admissionOpts) controller(maps, reds int, ins *woha.Instrumentation) (woha.AdmissionController, []string, error) {
	if ao.mode == "" {
		if ao.tenants != "" {
			return nil, nil, fmt.Errorf("-tenants requires -admission feasible or token-bucket")
		}
		return nil, nil, nil
	}
	tenants, names, err := parseTenants(ao.tenants)
	if err != nil {
		return nil, nil, err
	}
	if ao.mode == woha.AdmissionModeAlways {
		if len(names) > 0 {
			return nil, nil, fmt.Errorf("-tenants has no effect under -admission always")
		}
		return woha.AlwaysAdmit(ins), nil, nil
	}
	ctrl, err := woha.NewAdmission(woha.AdmissionConfig{
		Cluster: plan.Caps{Maps: maps, Reduces: reds},
		Mode:    ao.mode,
		Tenants: tenants,
		Obs:     ins,
	})
	if err != nil {
		return nil, nil, err
	}
	return ctrl, names, nil
}

// parseTenants decodes the -tenants spec: semicolon-separated tenants, each
// "name:key=value,..." with keys rate (admissions per virtual hour), burst,
// quota (fraction of cluster slots), and tier. Returns the config map plus
// the tenant names in spec order.
func parseTenants(spec string) (map[string]woha.AdmissionTenant, []string, error) {
	if spec == "" {
		return nil, nil, nil
	}
	tenants := make(map[string]woha.AdmissionTenant)
	var names []string
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, kvs, ok := strings.Cut(entry, ":")
		if !ok || name == "" {
			return nil, nil, fmt.Errorf("-tenants entry %q, want name:key=value,...", entry)
		}
		if _, dup := tenants[name]; dup {
			return nil, nil, fmt.Errorf("-tenants names tenant %q twice", name)
		}
		var t woha.AdmissionTenant
		for _, kv := range strings.Split(kvs, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, nil, fmt.Errorf("-tenants entry %q: %q, want key=value", entry, kv)
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("-tenants entry %q: %q: %v", entry, kv, err)
			}
			switch k {
			case "rate":
				t.Rate = f
			case "burst":
				t.Burst = int(f)
			case "quota":
				t.Quota = f
			case "tier":
				t.Tier = int(f)
			default:
				return nil, nil, fmt.Errorf("-tenants entry %q: unknown key %q (want rate, burst, quota, or tier)", entry, k)
			}
		}
		tenants[name] = t
		names = append(names, name)
	}
	return tenants, names, nil
}

// assignTenants stamps tenant names onto the workflows round-robin, in
// submission order. A no-op when no tenants were configured.
func assignTenants(flows []*woha.Workflow, names []string) {
	if len(names) == 0 {
		return
	}
	for i, w := range flows {
		w.Tenant = names[i%len(names)]
	}
}

// outcomeLabel renders one workflow's outcome column, covering the rejected
// case the admission front door introduces.
func outcomeLabel(w woha.WorkflowResult, met string) string {
	if w.Rejected {
		s := "REJECTED (" + w.RejectReason + ")"
		if w.CounterOffer > 0 {
			s += fmt.Sprintf(", counter-offer %.0fs", w.CounterOffer.Seconds())
		}
		return s
	}
	if !w.Met {
		return fmt.Sprintf("MISS by %v", w.Tardiness.Round(time.Second))
	}
	return met
}

// printAdmissionSummary reports the front door's aggregate outcome after a
// run. A no-op without a controller.
func printAdmissionSummary(adm woha.AdmissionController, flows []woha.WorkflowResult) {
	if adm == nil {
		return
	}
	rejected, offered := 0, 0
	admitted, missed := 0, 0
	for _, w := range flows {
		if w.Rejected {
			rejected++
			if w.CounterOffer > 0 {
				offered++
			}
			continue
		}
		admitted++
		if !w.Met {
			missed++
		}
	}
	ratio := 0.0
	if admitted > 0 {
		ratio = float64(missed) / float64(admitted)
	}
	fmt.Printf("admission %s: %d admitted, %d rejected (%d counter-offered), miss ratio among admitted %.1f%%\n",
		adm.Name(), admitted, rejected, offered, 100*ratio)
}
