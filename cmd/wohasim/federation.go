package main

import (
	"fmt"
	"time"

	woha "repro"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/plan"
)

// runFederation executes the workload across N member clusters behind one
// shared virtual clock: each member is a full simulator configured like the
// single-cluster path's, and the chosen router assigns every workflow to a
// member at its release instant, deciding on load snapshots at most
// -snapshot-refresh old.
func runFederation(workloadName, schedName string, cfg woha.ClusterConfig, clusters int, routerName string, refresh time.Duration, ins *woha.Instrumentation, pl *woha.Planner) error {
	flows, err := buildWorkload(workloadName)
	if err != nil {
		return err
	}
	spec, err := experiments.SchedulerByName(schedName)
	if err != nil {
		return err
	}
	router, err := federation.NewRouter(routerName)
	if err != nil {
		return err
	}
	sims := make([]*cluster.Simulator, clusters)
	for i := range sims {
		if sims[i], err = cluster.New(cfg, spec.New(cfg.Seed), nil); err != nil {
			return err
		}
		sims[i].SetInstrumentation(ins)
		defer sims[i].Release()
	}
	fed, err := federation.New(federation.Config{
		Router:          router,
		SnapshotRefresh: refresh,
		Obs:             ins,
	}, sims)
	if err != nil {
		return err
	}
	for _, w := range flows {
		var p *plan.Plan
		if spec.IsWOHA() {
			// Plans are capped at one member's capacity: that is the cluster
			// the workflow will actually run on, whichever the router picks.
			p, err = pl.Plan(w, plan.Caps{Maps: cfg.MapSlots(), Reduces: cfg.ReduceSlots()}, spec.Priority)
			if err != nil {
				return err
			}
		}
		if err := fed.Submit(w, p); err != nil {
			return err
		}
	}
	res, err := fed.Run()
	if err != nil {
		return err
	}

	fmt.Printf("federated %s over %d clusters x %d nodes (%d map + %d reduce slots each), router %s, snapshot refresh %v\n",
		schedName, clusters, cfg.Nodes, cfg.MapSlots(), cfg.ReduceSlots(), res.Router, res.SnapshotRefresh)
	fmt.Printf("%-12s %8s %10s %10s %10s %14s  %s\n",
		"workflow", "cluster", "release", "deadline", "finish", "snapshot-age", "met")
	for i, w := range res.Workflows {
		rt := res.Routes[i]
		fmt.Printf("%-12s %8d %9.0fs %9.0fs %9.0fs %14v  %s\n",
			w.Name, rt.Cluster, w.Release.Seconds(), w.Deadline.Seconds(), w.Finish.Seconds(),
			rt.SnapshotAge.Round(time.Millisecond), outcomeLabel(w, "yes"))
	}
	var maxAge time.Duration
	for _, rt := range res.Routes {
		if rt.SnapshotAge > maxAge {
			maxAge = rt.SnapshotAge
		}
	}
	fmt.Printf("routed per cluster %v, misses %d/%d (%.1f%%), max snapshot age %v\n",
		res.RoutedPerCluster(), res.DeadlineMisses(), len(res.Workflows), 100*res.MissRatio(),
		maxAge.Round(time.Millisecond))
	for i, cr := range res.Clusters {
		fmt.Printf("  cluster %d: %d workflows, %d tasks, makespan %v, utilization %.3f\n",
			i, len(cr.Workflows), cr.TasksStarted, cr.Makespan.Duration().Round(time.Second), cr.Utilization())
	}
	return nil
}
