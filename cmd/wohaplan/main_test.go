package main

import (
	"os"
	"path/filepath"
	"testing"
)

const planXML = `<workflow name="w" deadline="30m">
  <job name="a" maps="8" reduces="2" map-time="20s" reduce-time="1m"><output>/s</output></job>
  <job name="b" maps="4" reduces="1" map-time="20s" reduce-time="1m"><input>/s</input></job>
</workflow>`

func writeXML(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "w.xml")
	if err := os.WriteFile(path, []byte(planXML), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPrintsPlan(t *testing.T) {
	if err := run([]string{writeXML(t)}, "LPF", 20, 10, 0.85, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunBatchParallelCached(t *testing.T) {
	// A batch of identical files through the parallel searcher and the
	// cache: the second and third files are cache hits.
	path := writeXML(t)
	if err := run([]string{path, path, path}, "LPF", 20, 10, 0.85, 4, 16); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"/nonexistent.xml"}, "LPF", 20, 10, 0.85, 1, 0); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{writeXML(t)}, "ZZZ", 20, 10, 0.85, 1, 0); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{writeXML(t)}, "LPF", 20, 10, 2.0, 1, 0); err == nil {
		t.Error("bad margin accepted")
	}
}
