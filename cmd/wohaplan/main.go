// Command wohaplan plays the WOHA client's Scheduling Plan Generator: it
// reads one or more workflow XML configurations, generates each
// resource-capped scheduling plan, and prints the job ordering and progress
// requirement list (plus the encoded plan size the master node would store).
//
// Plans are produced through the planner service (internal/planner), so a
// batch of files can probe candidate caps in parallel (-parallel) and reuse
// plans across structurally identical workflows (-cache); both paths emit
// byte-identical plans to the sequential generator.
//
// Example:
//
//	wohaplan -map-slots 200 -reduce-slots 200 -policy LPF pipeline.xml
//	wohaplan -parallel 0 -cache 128 batch/*.xml
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	woha "repro"
	"repro/internal/plan"
	"repro/internal/planner"
)

func main() {
	var (
		mapSlots    = flag.Int("map-slots", 200, "cluster map slots")
		reduceSlots = flag.Int("reduce-slots", 200, "cluster reduce slots")
		policyName  = flag.String("policy", "LPF", "intra-workflow job priority: HLF, LPF, or MPF")
		margin      = flag.Float64("margin", 0.85, "plan safety margin in (0,1]")
		parallel    = flag.Int("parallel", 1, "concurrent Algorithm 1 probes per cap search (0 = one per core)")
		cacheSize   = flag.Int("cache", 0, "structural plan cache capacity (0 = disabled)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: wohaplan [flags] workflow.xml [more.xml ...]")
		os.Exit(2)
	}
	if err := run(flag.Args(), *policyName, *mapSlots, *reduceSlots, *margin, *parallel, *cacheSize); err != nil {
		fmt.Fprintln(os.Stderr, "wohaplan:", err)
		os.Exit(1)
	}
}

func run(paths []string, policyName string, mapSlots, reduceSlots int, margin float64, parallel, cacheSize int) error {
	pol, err := woha.PriorityByName(policyName)
	if err != nil {
		return err
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	pl := planner.New(planner.Config{Workers: parallel, CacheSize: cacheSize, Margin: margin})
	caps := plan.Caps{Maps: mapSlots, Reduces: reduceSlots}
	if caps.Maps <= 0 || caps.Reduces <= 0 {
		return fmt.Errorf("bad slot counts %d map / %d reduce", mapSlots, reduceSlots)
	}
	if margin <= 0 || margin > 1 {
		return fmt.Errorf("margin %v outside (0, 1]", margin)
	}

	for i, path := range paths {
		if i > 0 {
			fmt.Println()
		}
		if err := planOne(pl, path, caps, pol); err != nil {
			return err
		}
	}
	return nil
}

func planOne(pl *planner.Planner, path string, caps plan.Caps, pol woha.PriorityPolicy) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := woha.ParseWorkflowXML(f)
	if err != nil {
		return err
	}
	p, err := pl.Plan(w, caps, pol)
	if err != nil {
		return err
	}

	fmt.Printf("workflow %q: %d jobs, %d tasks, relative deadline %v\n",
		w.Name, len(w.Jobs), w.TotalTasks(), w.RelativeDeadline())
	source := fmt.Sprintf("%d simulations", p.SearchIters)
	if p.SearchIters == 0 {
		source = "plan cache hit"
	}
	fmt.Printf("plan: policy %s, resource cap %d slots, simulated makespan %v, feasible %v, encoded %d bytes (%s)\n\n",
		p.Policy, p.Cap, p.Makespan.Round(time.Second), p.Feasible, p.Size(), source)

	fmt.Println("job ordering (highest priority first):")
	order := make([]int, len(p.Ranks))
	for j, r := range p.Ranks {
		order[r] = j
	}
	for r, j := range order {
		fmt.Printf("  %2d. %s\n", r+1, w.Jobs[j].Name)
	}

	fmt.Println("\nprogress requirements (by ttd time before the deadline, req tasks must be scheduled):")
	reqs := append([]woha.PlanReq(nil), p.Reqs...)
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].TTD > reqs[j].TTD })
	for _, r := range reqs {
		fmt.Printf("  ttd %10v -> %4d tasks\n", r.TTD.Round(time.Second), r.Cum)
	}
	return nil
}
