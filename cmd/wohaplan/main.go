// Command wohaplan plays the WOHA client's Scheduling Plan Generator: it
// reads a workflow XML configuration, generates the resource-capped
// scheduling plan, and prints the job ordering and progress requirement
// list (plus the encoded plan size the master node would store).
//
// Example:
//
//	wohaplan -map-slots 200 -reduce-slots 200 -policy LPF pipeline.xml
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	woha "repro"
)

func main() {
	var (
		mapSlots    = flag.Int("map-slots", 200, "cluster map slots")
		reduceSlots = flag.Int("reduce-slots", 200, "cluster reduce slots")
		policyName  = flag.String("policy", "LPF", "intra-workflow job priority: HLF, LPF, or MPF")
		margin      = flag.Float64("margin", 0.85, "plan safety margin in (0,1]")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wohaplan [flags] workflow.xml")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *policyName, *mapSlots, *reduceSlots, *margin); err != nil {
		fmt.Fprintln(os.Stderr, "wohaplan:", err)
		os.Exit(1)
	}
}

func run(path, policyName string, mapSlots, reduceSlots int, margin float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := woha.ParseWorkflowXML(f)
	if err != nil {
		return err
	}
	pol, err := woha.PriorityByName(policyName)
	if err != nil {
		return err
	}
	p, err := woha.GeneratePlanTyped(w, mapSlots, reduceSlots, pol, margin)
	if err != nil {
		return err
	}

	fmt.Printf("workflow %q: %d jobs, %d tasks, relative deadline %v\n",
		w.Name, len(w.Jobs), w.TotalTasks(), w.RelativeDeadline())
	fmt.Printf("plan: policy %s, resource cap %d slots, simulated makespan %v, feasible %v, encoded %d bytes\n\n",
		p.Policy, p.Cap, p.Makespan.Round(time.Second), p.Feasible, p.Size())

	fmt.Println("job ordering (highest priority first):")
	order := make([]int, len(p.Ranks))
	for j, r := range p.Ranks {
		order[r] = j
	}
	for r, j := range order {
		fmt.Printf("  %2d. %s\n", r+1, w.Jobs[j].Name)
	}

	fmt.Println("\nprogress requirements (by ttd time before the deadline, req tasks must be scheduled):")
	reqs := append([]woha.PlanReq(nil), p.Reqs...)
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].TTD > reqs[j].TTD })
	for _, r := range reqs {
		fmt.Printf("  ttd %10v -> %4d tasks\n", r.TTD.Round(time.Second), r.Cum)
	}
	return nil
}
