// Command wohagen synthesizes workflow populations and writes them as XML
// configuration files, one per workflow.
//
// Example:
//
//	wohagen -out ./flows -seed 7          # the Yahoo-derived 61-workflow set
//	wohagen -out ./flows -kind fig7       # the 33-job demo topology
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	woha "repro"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func main() {
	var (
		out  = flag.String("out", ".", "output directory")
		kind = flag.String("kind", "yahoo", "workload kind: yahoo or fig7")
		seed = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	if err := run(*out, *kind, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "wohagen:", err)
		os.Exit(1)
	}
}

func run(out, kind string, seed int64) error {
	var flows []*woha.Workflow
	switch kind {
	case "yahoo":
		cfg := workload.DefaultYahooConfig()
		cfg.Seed = seed
		var err error
		flows, err = workload.Yahoo(cfg)
		if err != nil {
			return err
		}
	case "fig7":
		flows = []*woha.Workflow{
			workload.Fig7("fig7", 1.70, simtime.Epoch, simtime.Epoch.Add(80*time.Minute)),
		}
	default:
		return fmt.Errorf("unknown workload kind %q (want yahoo or fig7)", kind)
	}

	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for _, w := range flows {
		data, err := woha.MarshalWorkflowXML(w)
		if err != nil {
			return err
		}
		path := filepath.Join(out, w.Name+".xml")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d workflow configuration(s) to %s\n", len(flows), out)
	return nil
}
