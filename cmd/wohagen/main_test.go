package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig7(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "fig7", 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig7.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `<workflow name="fig7"`) {
		t.Errorf("unexpected XML:\n%s", data[:120])
	}
}

func TestRunYahoo(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "yahoo", 5); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 61 {
		t.Errorf("wrote %d files, want 61", len(entries))
	}
}

func TestRunUnknownKind(t *testing.T) {
	if err := run(t.TempDir(), "nope", 1); err == nil {
		t.Error("unknown kind accepted")
	}
}
