package main

import (
	"strings"
	"testing"
)

func TestRunRejectsUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := run("bogus", "", &sb); err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Errorf("err = %v", err)
	}
}

func TestRunFig2(t *testing.T) {
	var sb strings.Builder
	if err := run("2", "", &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig 2", "uncapped finish", "capped finish"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig13bAndTimelines(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run("13b", dir, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig 13(b)") {
		t.Errorf("missing Fig 13(b) table:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "timelines written") {
		t.Errorf("missing timeline confirmation:\n%s", sb.String())
	}
}
