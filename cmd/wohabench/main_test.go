package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRunRejectsUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := run("bogus", "", &sb, nil); err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Errorf("err = %v", err)
	}
}

func TestRunFig2(t *testing.T) {
	var sb strings.Builder
	if err := run("2", "", &sb, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig 2", "uncapped finish", "capped finish"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var sb strings.Builder
	if err := writeTrace(path, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "events written") {
		t.Errorf("missing confirmation line:\n%s", sb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The file must be the Chrome trace-event JSON object format with both
	// track groups named via metadata events.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	var trackers, workflows bool
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			if args, ok := ev["args"].(map[string]any); ok {
				switch args["name"] {
				case "trackers":
					trackers = true
				case "workflows":
					workflows = true
				}
			}
		}
	}
	if !trackers || !workflows {
		t.Errorf("trace missing track metadata: trackers=%v workflows=%v", trackers, workflows)
	}
}

func TestRunPlanBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	if err := runPlanBench(path, &sb); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report planBenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(report.Modes) != 3 {
		t.Fatalf("report has %d modes, want 3", len(report.Modes))
	}
	for _, m := range report.Modes {
		if m.PlansPerSec <= 0 || m.NsPerPlan <= 0 {
			t.Errorf("mode %s has empty measurements: %+v", m.Name, m)
		}
	}
	if warm := report.Modes[2]; warm.AvgSearchIters != 0 {
		t.Errorf("warm-cache avg simulations = %v, want 0 (all hits)", warm.AvgSearchIters)
	}
	if report.SpeedupWarmCache <= 1 {
		t.Errorf("warm-cache speedup = %.2fx, want > 1x", report.SpeedupWarmCache)
	}
	if !strings.Contains(sb.String(), "speedup:") {
		t.Errorf("summary missing speedup line:\n%s", sb.String())
	}

	sweep := report.Fig8Sweep
	if sweep.Cells == 0 || sweep.WohaCells == 0 || sweep.PlansServed == 0 {
		t.Fatalf("sweep section is empty: %+v", sweep)
	}
	// The shared planner simulates each distinct structural key exactly once;
	// cache hits and coalesced waits account for every other request.
	if got := sweep.DistinctKeysSimulated + sweep.CacheHits + sweep.Coalesced; got != sweep.PlansServed {
		t.Errorf("sweep accounting: distinct %d + hits %d + coalesced %d = %d, want plans served %d",
			sweep.DistinctKeysSimulated, sweep.CacheHits, sweep.Coalesced, got, sweep.PlansServed)
	}
	if sweep.DuplicateFills != 0 {
		t.Errorf("sweep duplicate fills = %d, want 0", sweep.DuplicateFills)
	}
	if !sweep.FiguresByteIdentical {
		t.Error("shared-planner figures differ from per-cell figures")
	}
	if !sweep.FirstRowBeforeLastCell {
		t.Errorf("first streamed row arrived after the sweep finished: %d/%d cells done",
			sweep.CellsDoneAtFirstRow, sweep.Cells)
	}
	if report.Contended.Goroutines == 0 || report.Contended.PlansPerSec <= 0 {
		t.Errorf("contended section is empty: %+v", report.Contended)
	}
	if report.Contended.DuplicateFills != 0 {
		t.Errorf("contended duplicate fills = %d, want 0", report.Contended.DuplicateFills)
	}
}

// TestRunFig8Streams pins the streamed Fig 8 rendering: the row-by-row
// TableWriter output of run("8") must be byte-identical to the batch
// MissTable render of the same sweep.
func TestRunFig8Streams(t *testing.T) {
	var sb strings.Builder
	if err := run("8", "", &sb, nil); err != nil {
		t.Fatal(err)
	}
	res, err := experiments.Fig8(experiments.DefaultFig8Config())
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := res.MissTable().Render(&want); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want.String() {
		t.Errorf("streamed Fig 8 differs from batch render:\nstreamed:\n%s\nbatch:\n%s", sb.String(), want.String())
	}
}

func TestRunFig13bAndTimelines(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run("13b", dir, &sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig 13(b)") {
		t.Errorf("missing Fig 13(b) table:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "timelines written") {
		t.Errorf("missing timeline confirmation:\n%s", sb.String())
	}
}
