package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/live"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// The -live-bench-out mode measures JobTracker heartbeat service under
// concurrent TaskTrackers: N goroutines hammer DeliverHeartbeat directly
// (no transport, no tracker sleep loop), mostly with busy reports and every
// eighth beat completing its held tasks and offering slots — the mix a
// loaded Hadoop master sees. The sharded control plane (Shards=GOMAXPROCS)
// is compared against the legacy single-mutex tracker (Shards=1) at 1, 4,
// 16, and 64 trackers.

// liveBenchReport is the JSON document -live-bench-out writes.
type liveBenchReport struct {
	// GoMaxProcs records the core budget: with one core, concurrent
	// trackers interleave instead of running in parallel, so the sharded
	// layout can only show lower synchronization overhead, not scaling.
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`
	// ShardsSharded is the shard count the "sharded" modes ran with.
	ShardsSharded int `json:"shards_sharded"`
	Workload      struct {
		Workflows          int `json:"workflows"`
		MapsPerWorkflow    int `json:"maps_per_workflow"`
		ReducesPerWorkflow int `json:"reduces_per_workflow"`
		BeatsPerTracker    int `json:"beats_per_tracker"`
	} `json:"workload"`
	Modes []liveBenchMode `json:"modes"`
	Note  string          `json:"note,omitempty"`
}

type liveBenchMode struct {
	Name             string  `json:"name"`
	Shards           int     `json:"shards"`
	Trackers         int     `json:"trackers"`
	HeartbeatsPerSec float64 `json:"heartbeats_per_sec"`
	P50Ns            int64   `json:"heartbeat_p50_ns"`
	P99Ns            int64   `json:"heartbeat_p99_ns"`
}

const (
	liveBenchFlows   = 64
	liveBenchMaps    = 800
	liveBenchReduces = 100
	liveBenchBeats   = 2000
)

// liveBenchCluster builds a cluster with the benchmark workload registered
// and the clock stamped (first heartbeat admits every workflow), so the
// measured loop sees steady-state traffic.
func liveBenchCluster(shards int) (*live.Cluster, error) {
	cfg := live.Config{
		Nodes:              1,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		HeartbeatInterval:  time.Millisecond,
		TimeScale:          0.001,
		Shards:             shards,
	}
	c, err := live.New(cfg, scheduler.NewFIFO())
	if err != nil {
		return nil, err
	}
	for i := 0; i < liveBenchFlows; i++ {
		w := workflow.NewBuilder(fmt.Sprintf("bench-%02d", i)).
			Job("j", liveBenchMaps, liveBenchReduces, 10*time.Second, 20*time.Second).
			MustBuild(simtime.Epoch, simtime.Epoch.Add(1000*time.Hour))
		if err := c.Submit(w, nil); err != nil {
			return nil, err
		}
	}
	c.DeliverHeartbeat(live.Heartbeat{Tracker: 0})
	return c, nil
}

// liveBenchMeasure runs one (layout, tracker-count) cell and reports
// throughput and latency percentiles across every heartbeat served.
func liveBenchMeasure(name string, shards, trackers int) (liveBenchMode, error) {
	c, err := liveBenchCluster(shards)
	if err != nil {
		return liveBenchMode{}, err
	}
	lat := make([][]int64, trackers)
	var wg sync.WaitGroup
	start := time.Now()
	for tr := 0; tr < trackers; tr++ {
		wg.Add(1)
		go func(tr int) {
			defer wg.Done()
			ls := make([]int64, 0, liveBenchBeats)
			var held []live.TaskID
			for i := 0; i < liveBenchBeats; i++ {
				hb := live.Heartbeat{Tracker: tr}
				if i%8 == 0 {
					// Refill beat: report the held completions, take new work.
					// Hand the tracker an owned copy — this loop truncates and
					// re-appends into held's backing array right away, so
					// passing held itself would mutate the slice mid-delivery
					// if the cluster reads it beyond the synchronous
					// completion pass (see live.Heartbeat's ownership note).
					hb.FreeMaps, hb.FreeReds = 2, 1
					hb.Completed = append([]live.TaskID(nil), held...)
					held = held[:0]
				}
				t0 := time.Now()
				out := c.DeliverHeartbeat(hb)
				ls = append(ls, time.Since(t0).Nanoseconds())
				for _, a := range out {
					held = append(held, a.ID)
				}
			}
			// Hand back anything still held so the tracker state stays sane.
			c.DeliverHeartbeat(live.Heartbeat{Tracker: tr, Completed: held})
			lat[tr] = ls
		}(tr)
	}
	wg.Wait()
	wall := time.Since(start)

	var merged []int64
	for _, ls := range lat {
		merged = append(merged, ls...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	n := len(merged)
	return liveBenchMode{
		Name:             name,
		Shards:           shards,
		Trackers:         trackers,
		HeartbeatsPerSec: float64(n) / wall.Seconds(),
		P50Ns:            merged[n/2],
		P99Ns:            merged[n*99/100],
	}, nil
}

// runLiveBench sweeps both tracker layouts across the tracker counts and
// writes the JSON report to path ("-" for stdout), echoing a summary to out.
func runLiveBench(path string, out io.Writer) error {
	var report liveBenchReport
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.GoVersion = runtime.Version()
	report.ShardsSharded = report.GoMaxProcs
	if report.ShardsSharded < 2 {
		// Still exercise the sharded pipeline; without cores the comparison
		// shows synchronization overhead, not parallel speedup.
		report.ShardsSharded = 4
		report.Note = fmt.Sprintf("measured with GOMAXPROCS=%d: concurrent trackers interleave on one core, so sharded-vs-legacy deltas reflect per-heartbeat synchronization cost only; re-baseline on a multi-core host to see contention relief", report.GoMaxProcs)
	}
	report.Workload.Workflows = liveBenchFlows
	report.Workload.MapsPerWorkflow = liveBenchMaps
	report.Workload.ReducesPerWorkflow = liveBenchReduces
	report.Workload.BeatsPerTracker = liveBenchBeats

	for _, trackers := range []int{1, 4, 16, 64} {
		for _, layout := range []struct {
			name   string
			shards int
		}{
			{"legacy", 1},
			{"sharded", report.ShardsSharded},
		} {
			m, err := liveBenchMeasure(layout.name, layout.shards, trackers)
			if err != nil {
				return err
			}
			report.Modes = append(report.Modes, m)
		}
	}

	doc, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if path == "-" {
		if _, err := out.Write(doc); err != nil {
			return err
		}
	} else if err := os.WriteFile(path, doc, 0o644); err != nil {
		return err
	}

	fmt.Fprintf(out, "live heartbeat benchmark (%d workflows, %d beats/tracker, GOMAXPROCS=%d):\n",
		liveBenchFlows, liveBenchBeats, report.GoMaxProcs)
	for _, m := range report.Modes {
		fmt.Fprintf(out, "  %-8s shards=%-2d trackers=%-3d %10.0f beats/sec  p50 %6dns  p99 %8dns\n",
			m.Name, m.Shards, m.Trackers, m.HeartbeatsPerSec, m.P50Ns, m.P99Ns)
	}
	if report.Note != "" {
		fmt.Fprintf(out, "  note: %s\n", report.Note)
	}
	if path != "-" {
		fmt.Fprintf(out, "report written to %s\n", path)
	}
	return nil
}
