package main

// The -queue-bench-out mode microbenchmarks the four inter-workflow queue
// backends (DSL, BST, Det, Naive) in isolation: on a warm queue of 1k/10k/
// 100k synthetic workflows it measures one steady-state AssignTask
// round-trip — Best, Scheduled on the head, Unscheduled to restore — and
// reports ops/sec and heap allocations per op. The Scheduled/Unscheduled
// pairing keeps every entry's true progress stationary, so the measurement
// never drifts out of the populated priority range no matter how long the
// timing loop runs.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/dsl"
	"repro/internal/plan"
	"repro/internal/simtime"
)

// queueBenchSizes are the queued-workflow populations measured per backend.
var queueBenchSizes = []int{1_000, 10_000, 100_000}

// queueBenchReport is the JSON document -queue-bench-out writes.
type queueBenchReport struct {
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`
	// Op documents the measured unit.
	Op     string            `json:"op"`
	Points []queueBenchPoint `json:"points"`
}

type queueBenchPoint struct {
	Backend     string  `json:"backend"`
	Queued      int     `json:"queued_workflows"`
	NsPerOp     int64   `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// queueBenchReqs mirrors the Fig 13(a) synthetic plan shape: a handful of
// progress waves tens of seconds apart.
func queueBenchReqs(rng *rand.Rand) []plan.Req {
	n := 2 + rng.Intn(8)
	reqs := make([]plan.Req, 0, n)
	ttd := time.Duration(200+rng.Intn(2000)) * time.Second
	cum := 0
	for i := 0; i < n; i++ {
		cum += 1 + rng.Intn(40)
		reqs = append(reqs, plan.Req{TTD: ttd, Cum: cum})
		ttd -= time.Duration(10+rng.Intn(120)) * time.Second
	}
	return reqs
}

// measureQueueOps fills a fresh queue with n entries and times the
// steady-state decision round-trip at a fixed instant (the first Best
// settles everything due, so the loop isolates the decision path).
func measureQueueOps(mk func() dsl.Queue, n int) queueBenchPoint {
	rng := rand.New(rand.NewSource(1))
	q := mk()
	for i := 0; i < n; i++ {
		q.Add(dsl.NewEntry(i, simtime.FromSeconds(600+rng.Float64()*100000), queueBenchReqs(rng)), 0)
	}
	now := simtime.FromSeconds(300)
	op := func() {
		e, ok := q.Best(now)
		if !ok {
			panic("queue bench: Best found nothing on a populated queue")
		}
		q.Scheduled(e.ID, now)
		q.Unscheduled(e.ID, now)
	}
	op()
	op()
	allocs := testing.AllocsPerRun(10, op)
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			op()
		}
	})
	ns := r.NsPerOp()
	return queueBenchPoint{
		Queued:      n,
		NsPerOp:     ns,
		OpsPerSec:   1e9 / float64(ns),
		AllocsPerOp: allocs,
	}
}

// runQueueBench measures every backend at every population and writes the
// JSON report to path ("-" for stdout), echoing a summary table to out.
func runQueueBench(path string, out io.Writer) error {
	backends := []struct {
		name string
		mk   func() dsl.Queue
	}{
		{"DSL", func() dsl.Queue { return dsl.New(1) }},
		{"BST", func() dsl.Queue { return dsl.NewBST() }},
		{"Det", func() dsl.Queue { return dsl.NewDeterministic() }},
		{"Naive", func() dsl.Queue { return dsl.NewNaive() }},
	}
	report := queueBenchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Op:         "Best + Scheduled + Unscheduled round-trip on a warm queue",
	}
	for _, b := range backends {
		for _, n := range queueBenchSizes {
			p := measureQueueOps(b.mk, n)
			p.Backend = b.name
			report.Points = append(report.Points, p)
		}
	}

	doc, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if path == "-" {
		if _, err := out.Write(doc); err != nil {
			return err
		}
	} else if err := os.WriteFile(path, doc, 0o644); err != nil {
		return err
	}

	fmt.Fprintf(out, "queue benchmark (%s, GOMAXPROCS=%d):\n", report.Op, report.GoMaxProcs)
	fmt.Fprintf(out, "  %-6s %10s %14s %12s %10s\n", "queue", "queued", "ops/sec", "ns/op", "allocs/op")
	for _, p := range report.Points {
		fmt.Fprintf(out, "  %-6s %10d %14.0f %12d %10.1f\n",
			p.Backend, p.Queued, p.OpsPerSec, p.NsPerOp, p.AllocsPerOp)
	}
	if path != "-" {
		fmt.Fprintf(out, "report written to %s\n", path)
	}
	return nil
}
