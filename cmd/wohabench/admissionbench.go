package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/admission"
	"repro/internal/experiments"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// The -admission-bench-out mode records the admission front door's
// rejected-vs-missed trade-off sweep (see experiments.AdmissionSweep): the
// Yahoo population run on a shrinking cluster, open-door vs behind the
// feasible controller, plus the cost of the decision path itself.

// admissionBenchReport is the JSON document -admission-bench-out writes.
type admissionBenchReport struct {
	// Controller labels the gated mode the sweep measures.
	Controller string `json:"controller"`
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`
	Config     struct {
		Sizes     []int   `json:"sizes"`
		Seed      int64   `json:"seed"`
		Margin    float64 `json:"plan_margin"`
		Workflows int     `json:"workflows"`
	} `json:"config"`
	Points []admissionBenchPoint `json:"points"`
	// NsPerSweepPass is the wall time of one full sweep (all sizes, both
	// doors).
	NsPerSweepPass int64 `json:"ns_per_sweep_pass"`
	// NsPerAlwaysDecision and AllocsPerAlwaysDecision measure the default
	// open-door fast path — the per-arrival overhead every uninstrumented
	// run pays; the alloc figure is pinned at 0 by make ci.
	NsPerAlwaysDecision     int64   `json:"ns_per_always_decision"`
	AllocsPerAlwaysDecision float64 `json:"allocs_per_always_decision"`
	Note                    string  `json:"note,omitempty"`
	// History preserves one entry per (controller, slots) from earlier
	// baselines, appended before the canonical points are overwritten.
	History []admissionBenchHistory `json:"history,omitempty"`
}

// admissionBenchPoint is one cluster size's outcome pair.
type admissionBenchPoint struct {
	Slots         int     `json:"slots_per_type"`
	AlwaysMiss    float64 `json:"always_miss_ratio"`
	Admitted      int     `json:"admitted"`
	Rejected      int     `json:"rejected"`
	CounterOffers int     `json:"counter_offers"`
	AdmittedMiss  float64 `json:"admitted_miss_ratio"`
	OverallMiss   float64 `json:"overall_miss_ratio"`
}

// admissionBenchHistory is one preserved point from an earlier baseline.
type admissionBenchHistory struct {
	Controller   string  `json:"controller"`
	Slots        int     `json:"slots_per_type"`
	GoMaxProcs   int     `json:"go_max_procs"`
	AlwaysMiss   float64 `json:"always_miss_ratio"`
	AdmittedMiss float64 `json:"admitted_miss_ratio"`
}

// loadAdmissionBenchHistory folds the committed report's canonical points
// into its history; each (controller, slots) pair is kept once.
func loadAdmissionBenchHistory(path string) []admissionBenchHistory {
	if path == "-" {
		return nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var prior admissionBenchReport
	if err := json.Unmarshal(raw, &prior); err != nil {
		return nil
	}
	hist := prior.History
	seen := make(map[[2]int]bool, len(hist)+len(prior.Points))
	key := func(ctrl string, slots int) [2]int {
		h := 0
		for _, c := range ctrl {
			h = h*31 + int(c)
		}
		return [2]int{h, slots}
	}
	for _, h := range hist {
		seen[key(h.Controller, h.Slots)] = true
	}
	for _, p := range prior.Points {
		if seen[key(prior.Controller, p.Slots)] {
			continue
		}
		hist = append(hist, admissionBenchHistory{
			Controller:   prior.Controller,
			Slots:        p.Slots,
			GoMaxProcs:   prior.GoMaxProcs,
			AlwaysMiss:   p.AlwaysMiss,
			AdmittedMiss: p.AdmittedMiss,
		})
	}
	return hist
}

// runAdmissionBench executes the sweep, measures the decision fast path, and
// writes the JSON report to path ("-" for stdout), echoing the table to out.
func runAdmissionBench(path string, out io.Writer) error {
	cfg := experiments.DefaultAdmissionSweepConfig()

	var report admissionBenchReport
	report.Controller = admission.ModeFeasible
	report.History = loadAdmissionBenchHistory(path)
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.GoVersion = runtime.Version()
	report.Config.Sizes = cfg.Sizes
	report.Config.Seed = cfg.Seed
	report.Config.Margin = cfg.Margin
	flows, err := workload.Yahoo(cfg.Yahoo)
	if err != nil {
		return err
	}
	report.Config.Workflows = len(workload.MultiJob(flows))

	var res *experiments.AdmissionSweepResult
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			if res, err = experiments.AdmissionSweep(cfg); err != nil {
				b.Fatalf("AdmissionSweep: %v", err)
			}
		}
	})
	report.NsPerSweepPass = r.NsPerOp()
	for _, p := range res.Points {
		report.Points = append(report.Points, admissionBenchPoint{
			Slots:         p.Size,
			AlwaysMiss:    p.AlwaysMiss,
			Admitted:      p.Admitted,
			Rejected:      p.Rejected,
			CounterOffers: p.CounterOffers,
			AdmittedMiss:  p.AdmittedMiss,
			OverallMiss:   p.OverallMiss,
		})
	}

	// The open-door fast path: one uninstrumented always-admit ruling.
	ctrl := admission.Always(nil)
	w := flows[0]
	now := simtime.Epoch
	dr := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctrl.Decide(w, nil, now)
		}
	})
	report.NsPerAlwaysDecision = dr.NsPerOp()
	report.AllocsPerAlwaysDecision = testing.AllocsPerRun(1000, func() {
		ctrl.Decide(w, nil, now)
	})

	doc, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if path == "-" {
		if _, err := out.Write(doc); err != nil {
			return err
		}
	} else if err := os.WriteFile(path, doc, 0o644); err != nil {
		return err
	}

	if err := res.Table().Render(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "sweep pass: %.1fms, always-admit decision: %dns, %.0f allocs (GOMAXPROCS=%d)\n",
		float64(report.NsPerSweepPass)/1e6, report.NsPerAlwaysDecision,
		report.AllocsPerAlwaysDecision, report.GoMaxProcs)
	if path != "-" {
		fmt.Fprintf(out, "report written to %s\n", path)
	}
	return nil
}
