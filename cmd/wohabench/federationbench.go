package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/workload"
)

// The -federation-bench-out mode records the federation's miss-rate-vs-
// staleness sweep (see experiments.FederationSweep): the Yahoo population
// routed over N member clusters, once per snapshot-staleness bound, plus the
// wall time of a full sweep pass.

// federationBenchReport is the JSON document -federation-bench-out writes.
type federationBenchReport struct {
	Router     string `json:"router"`
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`
	Config     struct {
		Clusters     int     `json:"clusters"`
		SlotsPerType int     `json:"slots_per_type_per_cluster"`
		Scheduler    string  `json:"scheduler"`
		Seed         int64   `json:"seed"`
		Margin       float64 `json:"plan_margin"`
		Workflows    int     `json:"workflows"`
	} `json:"config"`
	Points []federationBenchPoint `json:"points"`
	// NsPerSweepPass is the wall time of one full sweep (every staleness
	// bound, all member simulations).
	NsPerSweepPass int64  `json:"ns_per_sweep_pass"`
	Note           string `json:"note,omitempty"`
}

// federationBenchPoint is one staleness bound's outcome.
type federationBenchPoint struct {
	StalenessNS      int64   `json:"staleness_ns"`
	Misses           int     `json:"misses"`
	MissRatio        float64 `json:"miss_ratio"`
	MaxSnapshotAgeNS int64   `json:"max_snapshot_age_ns"`
	Routed           []int   `json:"routed_per_cluster"`
}

// runFederationBench executes the staleness sweep and writes the JSON report
// to path ("-" for stdout), echoing the table to out.
func runFederationBench(path string, out io.Writer) error {
	cfg := experiments.DefaultFederationSweepConfig()

	var report federationBenchReport
	report.Router = cfg.Router
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.GoVersion = runtime.Version()
	report.Config.Clusters = cfg.Clusters
	report.Config.SlotsPerType = cfg.Size
	report.Config.Scheduler = cfg.Scheduler
	report.Config.Seed = cfg.Seed
	report.Config.Margin = cfg.Margin
	report.Note = "staleness is the snapshot-refresh bound: how out-of-date a member load view " +
		"the router may decide on; the population and members are identical across rows"
	flows, err := workload.Yahoo(cfg.Yahoo)
	if err != nil {
		return err
	}
	report.Config.Workflows = len(workload.MultiJob(flows))

	var res *experiments.FederationSweepResult
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			if res, err = experiments.FederationSweep(cfg); err != nil {
				b.Fatalf("FederationSweep: %v", err)
			}
		}
	})
	report.NsPerSweepPass = r.NsPerOp()
	for _, p := range res.Points {
		report.Points = append(report.Points, federationBenchPoint{
			StalenessNS:      p.Staleness.Nanoseconds(),
			Misses:           p.Misses,
			MissRatio:        p.MissRatio,
			MaxSnapshotAgeNS: p.MaxSnapshotAge.Nanoseconds(),
			Routed:           p.Routed,
		})
	}

	doc, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if path == "-" {
		if _, err := out.Write(doc); err != nil {
			return err
		}
	} else if err := os.WriteFile(path, doc, 0o644); err != nil {
		return err
	}

	if err := res.Table().Render(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "sweep pass: %.1fms (GOMAXPROCS=%d)\n",
		float64(report.NsPerSweepPass)/1e6, report.GoMaxProcs)
	if path != "-" {
		fmt.Fprintf(out, "report written to %s\n", path)
	}
	return nil
}
