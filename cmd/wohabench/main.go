// Command wohabench regenerates the WOHA paper's evaluation figures on the
// simulated cluster and prints each as a table. With -timeline-dir it also
// writes the Fig 14-19 slot-allocation CSVs, and with -trace-out it records
// the Fig 11 scenario as a Chrome trace-event file for Perfetto.
//
// With -bench-out it instead benchmarks plan-generation throughput
// (sequential vs parallel vs cached planner; see internal/planner) and
// writes the numbers as JSON. With -sim-bench-out it benchmarks simulation
// throughput over the Fig 8 corpus (serial vs 8-worker runner; see
// internal/runner). With -live-bench-out it benchmarks live JobTracker
// heartbeat service under concurrent TaskTrackers (sharded vs legacy
// single-mutex control plane; see internal/live). With -queue-bench-out it
// microbenchmarks the four inter-workflow queue backends in isolation
// (steady-state decision round-trips at 1k/10k/100k queued workflows; see
// internal/dsl). With -admission-bench-out it runs the admission front door's
// rejected-vs-missed trade-off sweep (always-admit vs the feasible controller
// over a shrinking cluster; see internal/experiments.AdmissionSweep). With
// -federation-bench-out it runs the federation's miss-rate-vs-staleness sweep
// (the Yahoo population routed over member clusters with bounded-staleness
// load snapshots; see internal/experiments.FederationSweep).
//
// Usage:
//
//	wohabench [-fig all|2|3|5|6|8|9|10|11|12|13a|13b] [-timeline-dir DIR] [-trace-out FILE]
//	wohabench -bench-out BENCH_plan.json
//	wohabench -sim-bench-out BENCH_sim.json
//	wohabench -live-bench-out BENCH_live.json
//	wohabench -queue-bench-out BENCH_queue.json
//	wohabench -admission-bench-out BENCH_admission.json
//	wohabench -federation-bench-out BENCH_federation.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	woha "repro"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/planner"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (all, 2, 3, 5, 6, 8, 9, 10, 11, 12, 13a, 13b, ablations)")
	timelineDir := flag.String("timeline-dir", "", "directory to write Fig 14-19 CSVs into (empty = skip)")
	traceOut := flag.String("trace-out", "", "record the Fig 11 scenario under WOHA-LPF as Chrome trace-event JSON to this file (open in ui.perfetto.dev)")
	pmOut := flag.String("postmortem-out", "", "replay the Fig 11 scenario under WOHA-LPF with event capture and write the miss root-cause JSON report to this file")
	benchOut := flag.String("bench-out", "", "benchmark plan-generation throughput and write the JSON report to this file (- for stdout); skips the figure sweep")
	simBenchOut := flag.String("sim-bench-out", "", "benchmark simulation throughput over the Fig 8 corpus (serial vs 8 workers) and write the JSON report to this file (- for stdout); skips the figure sweep")
	liveBenchOut := flag.String("live-bench-out", "", "benchmark live JobTracker heartbeat service under concurrent trackers (sharded vs legacy single-mutex) and write the JSON report to this file (- for stdout); skips the figure sweep")
	queueBenchOut := flag.String("queue-bench-out", "", "microbenchmark the four inter-workflow queue backends (steady-state decision round-trips at 1k/10k/100k queued workflows) and write the JSON report to this file (- for stdout); skips the figure sweep")
	admBenchOut := flag.String("admission-bench-out", "", "run the admission rejected-vs-missed trade-off sweep (always-admit vs feasible front door over a shrinking cluster) and write the JSON report to this file (- for stdout); skips the figure sweep")
	fedBenchOut := flag.String("federation-bench-out", "", "run the federation miss-rate-vs-staleness sweep (Yahoo population routed over member clusters with bounded-staleness load snapshots) and write the JSON report to this file (- for stdout); skips the figure sweep")
	metricsAddr := flag.String("metrics-addr", "", "serve the introspection plane (/metrics, /statusz, /debug/pprof) on this address during the run (e.g. :8080; :0 picks a free port) and print a final scrape")
	flag.Parse()

	var (
		ins *woha.Instrumentation
		srv *woha.IntrospectionServer
	)
	if *metricsAddr != "" {
		ins = woha.NewInstrumentation(woha.NewMetrics(), nil)
		ins.EnableHealth(woha.HealthConfig{})
		var err error
		srv, err = woha.ServeIntrospection(*metricsAddr, ins)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wohabench:", err)
			os.Exit(1)
		}
		fmt.Printf("introspection: serving http://%s/metrics, /statusz, /debug/pprof/\n", srv.Addr())
	}
	finish := func() {
		if srv == nil {
			return
		}
		if err := srv.DumpMetrics(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wohabench:", err)
			os.Exit(1)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "wohabench:", err)
			os.Exit(1)
		}
	}

	if *benchOut != "" {
		if err := runPlanBench(*benchOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wohabench:", err)
			os.Exit(1)
		}
		finish()
		return
	}

	if *simBenchOut != "" {
		if err := runSimBench(*simBenchOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wohabench:", err)
			os.Exit(1)
		}
		finish()
		return
	}

	if *liveBenchOut != "" {
		if err := runLiveBench(*liveBenchOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wohabench:", err)
			os.Exit(1)
		}
		finish()
		return
	}

	if *queueBenchOut != "" {
		if err := runQueueBench(*queueBenchOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wohabench:", err)
			os.Exit(1)
		}
		finish()
		return
	}

	if *admBenchOut != "" {
		if err := runAdmissionBench(*admBenchOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wohabench:", err)
			os.Exit(1)
		}
		finish()
		return
	}

	if *fedBenchOut != "" {
		if err := runFederationBench(*fedBenchOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wohabench:", err)
			os.Exit(1)
		}
		finish()
		return
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wohabench:", err)
			os.Exit(1)
		}
	}
	if *pmOut != "" {
		if err := writePostmortem(*pmOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wohabench:", err)
			os.Exit(1)
		}
	}
	if (*traceOut != "" || *pmOut != "") && *fig == "all" && *timelineDir == "" {
		finish()
		return // capture flags alone: skip the full figure sweep
	}

	if err := run(*fig, *timelineDir, os.Stdout, ins); err != nil {
		fmt.Fprintln(os.Stderr, "wohabench:", err)
		os.Exit(1)
	}
	finish()
}

// writePostmortem replays the Fig 11 workload under WOHA-LPF with event
// capture on, reconstructs every missed workflow's timeline, and writes the
// root-cause report: JSON to path, text summary plus a per-miss table (with
// a blame column) to out.
func writePostmortem(path string, out io.Writer) error {
	ring := woha.NewEventRing(1 << 20)
	ins := woha.NewInstrumentation(nil, ring)
	ins.EnableHealth(woha.HealthConfig{})
	pl := woha.NewPlanner(
		woha.WithPlanCache(256),
		woha.WithPlanMargin(experiments.PlanMargin),
		woha.WithInstrumentation(ins))
	cfg := woha.ClusterConfig{Nodes: 32, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	sched, err := experiments.SchedulerByName("WOHA-LPF")
	if err != nil {
		return err
	}
	sess, err := woha.NewSession(cfg, woha.SchedulerWOHALPF,
		woha.WithInstrumentation(ins), woha.WithPlanner(pl))
	if err != nil {
		return err
	}
	var specs []woha.PostmortemSpec
	for i, w := range experiments.DefaultFig11Config().Flows() {
		if err := sess.Submit(w); err != nil {
			return err
		}
		// The shared cached planner already simulated this key for the
		// session, so the spec's plan is a cache hit, not a second search.
		p, err := pl.Plan(w, plan.Caps{Maps: cfg.MapSlots(), Reduces: cfg.ReduceSlots()}, sched.Priority)
		if err != nil {
			return err
		}
		specs = append(specs, woha.PostmortemSpec{Workflow: i, Spec: w, Plan: p})
	}
	if _, err := sess.Run(); err != nil {
		return err
	}
	rep := woha.AnalyzePostmortem(ring.Events(), specs)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "postmortem report written to %s\n", path)
	if err := rep.WriteText(out); err != nil {
		return err
	}
	return postmortemTable(rep, out)
}

// postmortemTable renders one row per missed workflow with the attribution
// condensed into a first-unmet-requirement column and a blame column.
func postmortemTable(rep *woha.PostmortemReport, out io.Writer) error {
	if len(rep.Missed) == 0 {
		return nil
	}
	sec := func(us int64) string { return fmt.Sprintf("%.0fs", float64(us)/1e6) }
	fmt.Fprintf(out, "%-12s %10s %10s %22s  %s\n",
		"workflow", "deadline", "tardiness", "first-unmet-F_i", "blame")
	for _, m := range rep.Missed {
		fi := "-"
		if rm := m.FirstUnmetReq; rm != nil {
			fi = fmt.Sprintf("%d/%d at ttd=%s", rm.Scheduled, rm.Cum, sec(rm.TTDUS))
		}
		bl := "-"
		if b := m.Blame; b != nil {
			bl = fmt.Sprintf("j%d %s %s (wait %s, run %s)", b.Job, b.Name, b.Stage, sec(b.WaitUS), sec(b.RunUS))
		}
		if _, err := fmt.Fprintf(out, "%-12s %10s %10s %22s  %s\n",
			m.Name, sec(m.DeadlineUS), sec(m.TardinessUS), fi, bl); err != nil {
			return err
		}
	}
	return nil
}

// writeTrace replays the Fig 11 workload (the 33-job demo topology x3) under
// WOHA-LPF with event capture on and renders the run as a Perfetto-loadable
// trace with per-tracker and per-workflow tracks.
func writeTrace(path string, out io.Writer) error {
	ring := woha.NewEventRing(1 << 16)
	ins := woha.NewInstrumentation(nil, ring)
	ins.EnableHealth(woha.HealthConfig{}) // slack counter tracks in the trace
	sess, err := woha.NewSession(woha.ClusterConfig{
		Nodes:              32,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
	}, woha.SchedulerWOHALPF, woha.WithInstrumentation(ins))
	if err != nil {
		return err
	}
	for _, w := range experiments.DefaultFig11Config().Flows() {
		if err := sess.Submit(w); err != nil {
			return err
		}
	}
	if _, err := sess.Run(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	events := ring.Events()
	if err := woha.WriteTrace(f, events); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "trace: %d events written to %s (open in ui.perfetto.dev or chrome://tracing)\n",
		len(events), path)
	return nil
}

var validFigs = map[string]bool{
	"all": true, "2": true, "3": true, "5": true, "6": true, "8": true,
	"9": true, "10": true, "11": true, "12": true, "13a": true, "13b": true,
	"ablations": true,
}

func run(fig, timelineDir string, out io.Writer, ins *woha.Instrumentation) error {
	if !validFigs[fig] {
		return fmt.Errorf("unknown figure %q (want one of all, 2, 3, 5, 6, 8, 9, 10, 11, 12, 13a, 13b, ablations)", fig)
	}
	want := func(names ...string) bool {
		if fig == "all" {
			return true
		}
		for _, n := range names {
			if fig == n {
				return true
			}
		}
		return false
	}

	// One coalescing plan service spans every figure's cells: within a sweep
	// each distinct (shape, caps, policy) key is simulated exactly once, and
	// across figures recurring templates — Fig 12 re-running the Fig 11
	// workload with three recurrences, say — are served from the same cache.
	// With -metrics-addr the sweep reuses the served instrumentation, so the
	// planner and runner counters land on the live /metrics endpoint.
	sweepObs := (*obs.Obs)(ins)
	if sweepObs == nil {
		sweepObs = obs.New(obs.NewRegistry(), nil)
	}
	pl := planner.New(planner.Config{CacheSize: 4096, Margin: experiments.PlanMargin, Obs: sweepObs})

	if want("2") {
		res, err := experiments.Fig2()
		if err != nil {
			return err
		}
		if err := res.Table().Render(out); err != nil {
			return err
		}
	}
	if want("3") {
		res, err := experiments.Fig3(experiments.DefaultFig3Config())
		if err != nil {
			return err
		}
		if err := res.Table().Render(out); err != nil {
			return err
		}
	}
	if want("5", "6") {
		res := experiments.Fig56(experiments.DefaultFig56Config())
		if want("5") {
			if err := res.Fig5Table().Render(out); err != nil {
				return err
			}
		}
		if want("6") {
			if err := res.Fig6Table().Render(out); err != nil {
				return err
			}
		}
	}
	if want("8", "9", "10") {
		cfg := experiments.DefaultFig8Config()
		cfg.Planner = pl
		cfg.Obs = sweepObs
		var res *experiments.Fig8Result
		var err error
		if want("8") {
			// Stream Fig 8 row by row: each scheduler's line prints as soon
			// as its three cells finish, while the remaining schedulers are
			// still simulating — byte-identical to MissTable().Render on the
			// completed sweep.
			tw, twErr := experiments.NewTableWriter(out, experiments.Fig8MissTitle, "", cfg.SizesHeader())
			if twErr != nil {
				return twErr
			}
			res, err = experiments.Fig8Each(cfg, func(row experiments.Fig8Row) error {
				cells := []string{row.Scheduler}
				for _, v := range row.MissRatio {
					cells = append(cells, fmt.Sprintf("%.3f", v))
				}
				return tw.Row(cells)
			})
			if err == nil {
				err = tw.Close()
			}
		} else {
			res, err = experiments.Fig8(cfg)
		}
		if err != nil {
			return err
		}
		if want("9") {
			if err := res.MaxTardTable().Render(out); err != nil {
				return err
			}
		}
		if want("10") {
			if err := res.TotalTardTable().Render(out); err != nil {
				return err
			}
		}
	}
	if want("11") || timelineDir != "" {
		cfg := experiments.DefaultFig11Config()
		cfg.Planner = pl
		cfg.Obs = sweepObs
		res, err := experiments.Fig11(cfg)
		if err != nil {
			return err
		}
		if want("11") {
			if err := res.WorkspanTable().Render(out); err != nil {
				return err
			}
		}
		if timelineDir != "" {
			if err := os.MkdirAll(timelineDir, 0o755); err != nil {
				return err
			}
			err := res.WriteTimelines(func(stem string) (io.WriteCloser, error) {
				return os.Create(filepath.Join(timelineDir, stem+".csv"))
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "Fig 14-19 timelines written to %s\n\n", timelineDir)
		}
	}
	if want("12") {
		cfg := experiments.DefaultFig11Config()
		cfg.Recurrences = 3
		cfg.Planner = pl
		cfg.Obs = sweepObs
		res, err := experiments.Fig11(cfg)
		if err != nil {
			return err
		}
		if err := res.UtilizationTable().Render(out); err != nil {
			return err
		}
	}
	if want("13a") {
		res := experiments.Fig13a(experiments.DefaultFig13aConfig())
		if err := res.Table().Render(out); err != nil {
			return err
		}
	}
	if want("ablations") {
		f11, err := experiments.AblationsFig11()
		if err != nil {
			return err
		}
		if err := experiments.AblationTable("Ablations: simulator knobs (Fig 11 scenario, WOHA-LPF)", f11).Render(out); err != nil {
			return err
		}
		yah, err := experiments.AblationsYahoo()
		if err != nil {
			return err
		}
		if err := experiments.AblationTable("Ablations: policy knobs (Yahoo workload, 240m-240r, WOHA-LPF)", yah).Render(out); err != nil {
			return err
		}
	}
	if want("13b") {
		res, err := experiments.Fig13b(experiments.DefaultFig13bConfig())
		if err != nil {
			return err
		}
		if err := res.Table().Render(out); err != nil {
			return err
		}
	}
	return nil
}
