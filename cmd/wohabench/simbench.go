package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/plan"
	"repro/internal/runner"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// The -sim-bench-out mode measures simulation throughput: how fast the
// discrete-event cluster replays the Fig 8 experiment corpus (six schedulers
// x three cluster sizes over the 61-workflow Yahoo population). Plans are
// generated once up front so the numbers isolate the simulator hot path, and
// the corpus is timed serially and over an 8-worker pool — the runner
// guarantees identical results either way, so the ratio is pure wall-clock.

// simCoreLabel names the simulator memory layout and policy-decision path
// the canonical numbers are measured on; it keys the per-mode throughput
// history so re-baselining after a core rewrite preserves the prior
// generation's figures. "soa-arena+o1-policy" is the arena core with
// constant-time policy decisions: the bucketed lag index in the DSL, pooled
// ct/set nodes, and per-workflow schedulable-job indexes.
const simCoreLabel = "soa-arena+o1-policy"

// preSoaCoreLabel labels history entries inherited from a BENCH_sim.json
// written before core labels existed (the map-based pop-per-event core).
const preSoaCoreLabel = "pre-soa-map-core"

// simBenchReport is the JSON document -sim-bench-out writes.
type simBenchReport struct {
	// Core labels the simulator memory layout behind the canonical numbers
	// (see History for earlier generations).
	Core string `json:"core"`
	// GoMaxProcs records the core budget: the parallel speedup is bounded
	// by it (on a single-core host expect ~1x from parallelism; re-baseline
	// on a multi-core host to see the pool win).
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`
	Corpus     struct {
		Cells         int `json:"cells"`
		Schedulers    int `json:"schedulers"`
		ClusterSizes  int `json:"cluster_sizes"`
		Workflows     int `json:"workflows_per_cell"`
		EventsPerPass int `json:"simulated_events_per_pass"`
	} `json:"corpus"`
	Modes []simBenchMode `json:"modes"`
	// SpeedupParallel is serial ns/pass divided by the pool's ns/pass.
	SpeedupParallel float64 `json:"speedup_parallel_x"`
	// AllocsPerScenario is the steady-state heap allocations one pooled
	// corpus-scale scenario performs end to end (New + Submit + Run +
	// Release with a pre-built minimal policy, warm pool) — the quantity
	// the arena refactor drives toward zero; the Result value and its
	// Workflows slice are the tolerated remainder.
	AllocsPerScenario float64 `json:"allocs_per_scenario_steady_state"`
	Note              string  `json:"note,omitempty"`
	// History carries one entry per (core, mode) from earlier baselines:
	// when the benchmark runs against a file whose canonical numbers were
	// measured on another core generation (or on this one), those numbers
	// are folded in here before being overwritten. The top-level Modes
	// stay canonical; History is append-only evidence of the progression.
	History []simBenchHistory `json:"history,omitempty"`
}

type simBenchMode struct {
	Name            string  `json:"name"`
	Workers         int     `json:"workers"`
	ScenariosPerSec float64 `json:"scenarios_per_sec"`
	NsPerScenario   int64   `json:"ns_per_scenario"`
	NsPerSimEvent   float64 `json:"ns_per_simulated_event"`
	NsPerPass       int64   `json:"ns_per_pass"`
}

// simBenchHistory is one preserved per-mode measurement from an earlier
// baseline run.
type simBenchHistory struct {
	Core          string  `json:"core"`
	Mode          string  `json:"mode"`
	GoMaxProcs    int     `json:"go_max_procs"`
	NsPerSimEvent float64 `json:"ns_per_simulated_event"`
}

// simBenchCells builds the Fig 8 corpus with every cell's plans generated
// eagerly and memoized, so repeated passes time only the simulator.
func simBenchCells() ([]runner.Cell, error) {
	cells, err := experiments.Fig8Cells(experiments.DefaultFig8Config())
	if err != nil {
		return nil, err
	}
	for i := range cells {
		if cells[i].Plans == nil {
			continue
		}
		plans, err := cells[i].Plans()
		if err != nil {
			return nil, fmt.Errorf("pre-generating plans for %s: %w", cells[i].Name, err)
		}
		cells[i].Plans = func() ([]*plan.Plan, error) { return plans, nil }
	}
	return cells, nil
}

// loadSimBenchHistory reads the committed report at path (when present) and
// returns its history with the prior canonical per-mode numbers folded in.
// Each (core, mode) pair is kept once — the first measurement of that
// generation survives repeated re-baselines.
func loadSimBenchHistory(path string) []simBenchHistory {
	if path == "-" {
		return nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var prior simBenchReport
	if err := json.Unmarshal(raw, &prior); err != nil {
		return nil
	}
	hist := prior.History
	seen := make(map[[2]string]bool, len(hist)+len(prior.Modes))
	for _, h := range hist {
		seen[[2]string{h.Core, h.Mode}] = true
	}
	core := prior.Core
	if core == "" {
		core = preSoaCoreLabel
	}
	for _, m := range prior.Modes {
		if seen[[2]string{core, m.Name}] {
			continue
		}
		hist = append(hist, simBenchHistory{
			Core:          core,
			Mode:          m.Name,
			GoMaxProcs:    prior.GoMaxProcs,
			NsPerSimEvent: m.NsPerSimEvent,
		})
	}
	return hist
}

// measureScenarioAllocs replays one corpus-sized scenario (the first Fig 8
// cell's cluster and workflow population, no plans) through the pooled
// simulator with pre-built minimal FIFO policies and returns the
// steady-state heap allocations per run. Policies live outside the measured
// closure so the number isolates the simulator core, mirroring the
// TestScenarioAllocs pins in internal/cluster.
func measureScenarioAllocs(c *runner.Cell) (float64, error) {
	const iters = 10
	pols := make([]*benchPinPolicy, iters+2)
	for i := range pols {
		pols[i] = newBenchPinPolicy()
	}
	var firstErr error
	i := 0
	run := func() {
		pol := pols[i%len(pols)]
		i++
		sim, err := cluster.New(c.Config, pol, nil)
		if err != nil {
			firstErr = err
			return
		}
		for _, w := range c.Flows {
			if err := sim.Submit(w, nil); err != nil {
				firstErr = err
				return
			}
		}
		if _, err := sim.Run(); err != nil {
			firstErr = err
			return
		}
		sim.Release()
	}
	run()
	run()
	allocs := testing.AllocsPerRun(iters, run)
	return allocs, firstErr
}

// benchPinPolicy is the minimal FIFO used by the allocation measurement;
// its queue capacity is pre-grown so policy bookkeeping never shows up in
// the simulator's number.
type benchPinPolicy struct{ queue []benchPinEntry }

type benchPinEntry struct {
	ws  *cluster.WorkflowState
	job workflow.JobID
}

func newBenchPinPolicy() *benchPinPolicy {
	return &benchPinPolicy{queue: make([]benchPinEntry, 0, 128)}
}

func (p *benchPinPolicy) Name() string                                       { return "bench-pin" }
func (p *benchPinPolicy) WorkflowAdded(*cluster.WorkflowState, simtime.Time) {}
func (p *benchPinPolicy) TaskStarted(*cluster.WorkflowState, workflow.JobID, cluster.SlotType, simtime.Time) {
}
func (p *benchPinPolicy) WorkflowCompleted(*cluster.WorkflowState, simtime.Time) {}

func (p *benchPinPolicy) JobActivated(ws *cluster.WorkflowState, job workflow.JobID, _ simtime.Time) {
	p.queue = append(p.queue, benchPinEntry{ws: ws, job: job})
}

func (p *benchPinPolicy) NextTask(_ simtime.Time, st cluster.SlotType) (*cluster.WorkflowState, workflow.JobID, bool) {
	w := 0
	for _, e := range p.queue {
		js := &e.ws.Jobs[e.job]
		if js.Completed() {
			continue
		}
		p.queue[w] = e
		w++
		if js.Schedulable(st) {
			return e.ws, e.job, true
		}
	}
	p.queue = p.queue[:w]
	return nil, 0, false
}

// runSimBench measures the corpus serially and over an 8-worker pool and
// writes the JSON report to path ("-" for stdout), echoing a summary to out.
func runSimBench(path string, out io.Writer) error {
	cells, err := simBenchCells()
	if err != nil {
		return err
	}

	var report simBenchReport
	report.Core = simCoreLabel
	report.History = loadSimBenchHistory(path)
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.GoVersion = runtime.Version()
	report.Corpus.Cells = len(cells)
	report.Corpus.Schedulers = len(experiments.AllSchedulers())
	report.Corpus.ClusterSizes = len(experiments.DefaultFig8Config().Sizes)
	report.Corpus.Workflows = len(cells[0].Flows)
	if report.GoMaxProcs < 8 {
		report.Note = fmt.Sprintf("measured with GOMAXPROCS=%d: the 8-worker pool cannot beat serial without cores to run on; re-baseline on a multi-core host", report.GoMaxProcs)
	}

	// Warmup pass: verifies the corpus runs clean, fills the simulator pool,
	// and counts the simulated events a pass replays.
	results, err := runner.New(runner.Config{Workers: 1}).RunAll(cells)
	if err != nil {
		return err
	}
	for _, res := range results {
		report.Corpus.EventsPerPass += res.SimulatedEvents
	}

	for _, m := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel-8", 8},
	} {
		run := runner.New(runner.Config{Workers: m.workers})
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := run.RunAll(cells); err != nil {
					b.Fatalf("RunAll: %v", err)
				}
			}
		})
		nsPass := r.NsPerOp()
		nsScenario := nsPass / int64(len(cells))
		report.Modes = append(report.Modes, simBenchMode{
			Name:            m.name,
			Workers:         m.workers,
			ScenariosPerSec: 1e9 / float64(nsScenario),
			NsPerScenario:   nsScenario,
			NsPerSimEvent:   float64(nsPass) / float64(report.Corpus.EventsPerPass),
			NsPerPass:       nsPass,
		})
	}
	report.SpeedupParallel = float64(report.Modes[0].NsPerPass) / float64(report.Modes[1].NsPerPass)

	if report.AllocsPerScenario, err = measureScenarioAllocs(&cells[0]); err != nil {
		return err
	}

	doc, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if path == "-" {
		if _, err := out.Write(doc); err != nil {
			return err
		}
	} else if err := os.WriteFile(path, doc, 0o644); err != nil {
		return err
	}

	fmt.Fprintf(out, "sim benchmark (%d cells, %d simulated events/pass, GOMAXPROCS=%d, core=%s):\n",
		len(cells), report.Corpus.EventsPerPass, report.GoMaxProcs, report.Core)
	for _, m := range report.Modes {
		before := ""
		// Show the newest prior-generation figure for this mode as the
		// "before" column of the core progression.
		for _, h := range report.History {
			if h.Mode == m.Name && h.Core != report.Core {
				before = fmt.Sprintf("  (was %.0f ns/event on %s)", h.NsPerSimEvent, h.Core)
			}
		}
		fmt.Fprintf(out, "  %-11s %8.1f scenarios/sec  %6.0f ns/simulated-event%s\n",
			m.Name, m.ScenariosPerSec, m.NsPerSimEvent, before)
	}
	fmt.Fprintf(out, "  speedup: parallel-8 %.2fx (vs serial)\n", report.SpeedupParallel)
	fmt.Fprintf(out, "  steady-state allocs/scenario: %.1f\n", report.AllocsPerScenario)
	if report.Note != "" {
		fmt.Fprintf(out, "  note: %s\n", report.Note)
	}
	if path != "-" {
		fmt.Fprintf(out, "report written to %s\n", path)
	}
	return nil
}
