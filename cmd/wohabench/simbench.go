package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/plan"
	"repro/internal/runner"
)

// The -sim-bench-out mode measures simulation throughput: how fast the
// discrete-event cluster replays the Fig 8 experiment corpus (six schedulers
// x three cluster sizes over the 61-workflow Yahoo population). Plans are
// generated once up front so the numbers isolate the simulator hot path, and
// the corpus is timed serially and over an 8-worker pool — the runner
// guarantees identical results either way, so the ratio is pure wall-clock.

// simBenchReport is the JSON document -sim-bench-out writes.
type simBenchReport struct {
	// GoMaxProcs records the core budget: the parallel speedup is bounded
	// by it (on a single-core host expect ~1x from parallelism; re-baseline
	// on a multi-core host to see the pool win).
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`
	Corpus     struct {
		Cells         int `json:"cells"`
		Schedulers    int `json:"schedulers"`
		ClusterSizes  int `json:"cluster_sizes"`
		Workflows     int `json:"workflows_per_cell"`
		EventsPerPass int `json:"simulated_events_per_pass"`
	} `json:"corpus"`
	Modes []simBenchMode `json:"modes"`
	// SpeedupParallel is serial ns/pass divided by the pool's ns/pass.
	SpeedupParallel float64 `json:"speedup_parallel_x"`
	Note            string  `json:"note,omitempty"`
}

type simBenchMode struct {
	Name            string  `json:"name"`
	Workers         int     `json:"workers"`
	ScenariosPerSec float64 `json:"scenarios_per_sec"`
	NsPerScenario   int64   `json:"ns_per_scenario"`
	NsPerSimEvent   float64 `json:"ns_per_simulated_event"`
	NsPerPass       int64   `json:"ns_per_pass"`
}

// simBenchCells builds the Fig 8 corpus with every cell's plans generated
// eagerly and memoized, so repeated passes time only the simulator.
func simBenchCells() ([]runner.Cell, error) {
	cells, err := experiments.Fig8Cells(experiments.DefaultFig8Config())
	if err != nil {
		return nil, err
	}
	for i := range cells {
		if cells[i].Plans == nil {
			continue
		}
		plans, err := cells[i].Plans()
		if err != nil {
			return nil, fmt.Errorf("pre-generating plans for %s: %w", cells[i].Name, err)
		}
		cells[i].Plans = func() ([]*plan.Plan, error) { return plans, nil }
	}
	return cells, nil
}

// runSimBench measures the corpus serially and over an 8-worker pool and
// writes the JSON report to path ("-" for stdout), echoing a summary to out.
func runSimBench(path string, out io.Writer) error {
	cells, err := simBenchCells()
	if err != nil {
		return err
	}

	var report simBenchReport
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.GoVersion = runtime.Version()
	report.Corpus.Cells = len(cells)
	report.Corpus.Schedulers = len(experiments.AllSchedulers())
	report.Corpus.ClusterSizes = len(experiments.DefaultFig8Config().Sizes)
	report.Corpus.Workflows = len(cells[0].Flows)
	if report.GoMaxProcs < 8 {
		report.Note = fmt.Sprintf("measured with GOMAXPROCS=%d: the 8-worker pool cannot beat serial without cores to run on; re-baseline on a multi-core host", report.GoMaxProcs)
	}

	// Warmup pass: verifies the corpus runs clean, fills the simulator pool,
	// and counts the simulated events a pass replays.
	results, err := runner.New(runner.Config{Workers: 1}).RunAll(cells)
	if err != nil {
		return err
	}
	for _, res := range results {
		report.Corpus.EventsPerPass += res.SimulatedEvents
	}

	for _, m := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel-8", 8},
	} {
		run := runner.New(runner.Config{Workers: m.workers})
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := run.RunAll(cells); err != nil {
					b.Fatalf("RunAll: %v", err)
				}
			}
		})
		nsPass := r.NsPerOp()
		nsScenario := nsPass / int64(len(cells))
		report.Modes = append(report.Modes, simBenchMode{
			Name:            m.name,
			Workers:         m.workers,
			ScenariosPerSec: 1e9 / float64(nsScenario),
			NsPerScenario:   nsScenario,
			NsPerSimEvent:   float64(nsPass) / float64(report.Corpus.EventsPerPass),
			NsPerPass:       nsPass,
		})
	}
	report.SpeedupParallel = float64(report.Modes[0].NsPerPass) / float64(report.Modes[1].NsPerPass)

	doc, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if path == "-" {
		if _, err := out.Write(doc); err != nil {
			return err
		}
	} else if err := os.WriteFile(path, doc, 0o644); err != nil {
		return err
	}

	fmt.Fprintf(out, "sim benchmark (%d cells, %d simulated events/pass, GOMAXPROCS=%d):\n",
		len(cells), report.Corpus.EventsPerPass, report.GoMaxProcs)
	for _, m := range report.Modes {
		fmt.Fprintf(out, "  %-11s %8.1f scenarios/sec  %6.0f ns/simulated-event\n",
			m.Name, m.ScenariosPerSec, m.NsPerSimEvent)
	}
	fmt.Fprintf(out, "  speedup: parallel-8 %.2fx (vs serial)\n", report.SpeedupParallel)
	if report.Note != "" {
		fmt.Fprintf(out, "  note: %s\n", report.Note)
	}
	if path != "-" {
		fmt.Fprintf(out, "report written to %s\n", path)
	}
	return nil
}
