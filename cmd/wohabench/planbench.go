package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
	"repro/internal/workload"
)

// The -bench-out mode measures workflow-admission throughput: how fast the
// planner subsystem turns workflows into resource-capped scheduling plans.
// It drives the Yahoo-derived 61-workflow population plus the Fig 7 topology
// through three planner configurations — the seed-equivalent sequential
// path, the speculative parallel search, and a warm structural cache — and
// writes the numbers as JSON so runs are comparable across commits.

// planBenchReport is the JSON document -bench-out writes.
type planBenchReport struct {
	// GoMaxProcs records the core budget: parallel-search speedup is
	// bounded by it (on a single-core host expect ~1x from parallelism,
	// with cache and pooling wins unaffected).
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`
	Corpus     struct {
		Workflows   int     `json:"workflows"`
		ClusterMaps int     `json:"cluster_map_slots"`
		ClusterReds int     `json:"cluster_reduce_slots"`
		Policy      string  `json:"policy"`
		Margin      float64 `json:"margin"`
	} `json:"corpus"`
	Modes []planBenchMode `json:"modes"`
	// Speedups are sequential ns/plan divided by the mode's ns/plan.
	SpeedupParallel  float64 `json:"speedup_parallel_x"`
	SpeedupWarmCache float64 `json:"speedup_warm_cache_x"`
	// Fig8Sweep compares planning the full Fig 8 corpus per-cell (the seed
	// behavior: every WOHA cell regenerates each of its plans) against one
	// shared coalescing planner, with the exactly-once accounting and the
	// streamed-figure evidence.
	Fig8Sweep planBenchSweep `json:"fig8_sweep"`
	// Contended hammers one warm shared planner from many goroutines with
	// colliding keys: the cache-mutex overhead under contention, shown
	// against the sequential generation cost it replaces.
	Contended planBenchContended `json:"contended"`
}

type planBenchMode struct {
	Name           string  `json:"name"`
	PlansPerSec    float64 `json:"plans_per_sec"`
	NsPerPlan      int64   `json:"ns_per_plan"`
	AllocsPerPlan  int64   `json:"allocs_per_plan"`
	BytesPerPlan   int64   `json:"bytes_per_plan"`
	AvgSearchIters float64 `json:"avg_search_iters"`
}

// planBenchSweep is the shared-vs-per-cell comparison over the 18-cell
// Fig 8 sweep. DistinctKeysSimulated + CacheHits + Coalesced always equals
// PlansServed, and with zero duplicate fills "distinct keys simulated"
// is exactly the number of Algorithm 1 cap searches that ran.
type planBenchSweep struct {
	Cells                  int     `json:"cells"`
	WohaCells              int     `json:"woha_cells"`
	Passes                 int     `json:"passes"`
	PerCellPlanNs          int64   `json:"per_cell_plan_ns"`
	SharedPlanNs           int64   `json:"shared_plan_ns"`
	SpeedupShared          float64 `json:"speedup_shared_x"`
	PlansServed            int64   `json:"plans_served"`
	DistinctKeysSimulated  int64   `json:"distinct_keys_simulated"`
	CacheHits              int64   `json:"cache_hits"`
	Coalesced              int64   `json:"coalesced"`
	DuplicateFills         int64   `json:"duplicate_fills"`
	FiguresByteIdentical   bool    `json:"figures_byte_identical"`
	CellsDoneAtFirstRow    int64   `json:"cells_done_at_first_row"`
	FirstRowBeforeLastCell bool    `json:"first_row_before_last_cell"`
}

// planBenchContended measures the shared planner under many concurrent
// same-key clients, all served from the warm cache through its mutex.
type planBenchContended struct {
	Goroutines          int     `json:"goroutines"`
	PlansPerSec         float64 `json:"plans_per_sec"`
	NsPerPlan           int64   `json:"ns_per_plan"`
	SpeedupVsSequential float64 `json:"speedup_vs_sequential_x"`
	DuplicateFills      int64   `json:"duplicate_fills"`
}

var planBenchCluster = plan.Caps{Maps: 300, Reduces: 180}

func planBenchCorpus() ([]*workflow.Workflow, error) {
	flows, err := workload.Yahoo(workload.DefaultYahooConfig())
	if err != nil {
		return nil, err
	}
	flows = append(flows, workload.Fig7("fig7", 1.0, simtime.Epoch, simtime.Epoch.Add(45*time.Minute)))
	return flows, nil
}

// runPlanBench measures the three configurations and writes the JSON report
// to path ("-" for stdout), echoing a summary table to out.
func runPlanBench(path string, out io.Writer) error {
	flows, err := planBenchCorpus()
	if err != nil {
		return err
	}
	pol := priority.HLF{}

	var report planBenchReport
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.GoVersion = runtime.Version()
	report.Corpus.Workflows = len(flows)
	report.Corpus.ClusterMaps = planBenchCluster.Maps
	report.Corpus.ClusterReds = planBenchCluster.Reduces
	report.Corpus.Policy = pol.Name()
	report.Corpus.Margin = planner.DefaultMargin

	modes := []struct {
		name string
		mk   func() *planner.Planner
		warm bool
	}{
		{"sequential", func() *planner.Planner { return planner.New(planner.Config{}) }, false},
		{"parallel", func() *planner.Planner {
			return planner.New(planner.Config{Workers: runtime.GOMAXPROCS(0)})
		}, false},
		{"warm-cache", func() *planner.Planner {
			return planner.New(planner.Config{Workers: runtime.GOMAXPROCS(0), CacheSize: 2 * len(flows)})
		}, true},
	}
	for _, m := range modes {
		pl := m.mk()
		if m.warm {
			for _, w := range flows {
				if _, err := pl.Plan(w, planBenchCluster, pol); err != nil {
					return fmt.Errorf("warming %s: %w", m.name, err)
				}
			}
		}
		// Average SearchIters over one full corpus pass (cache hits report
		// 0: they run no simulations).
		var iters int
		for _, w := range flows {
			p, err := pl.Plan(w, planBenchCluster, pol)
			if err != nil {
				return fmt.Errorf("%s: planning %s: %w", m.name, w.Name, err)
			}
			iters += p.SearchIters
		}

		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pl.Plan(flows[i%len(flows)], planBenchCluster, pol); err != nil {
					b.Fatalf("Plan: %v", err)
				}
			}
		})
		ns := r.NsPerOp()
		report.Modes = append(report.Modes, planBenchMode{
			Name:           m.name,
			PlansPerSec:    1e9 / float64(ns),
			NsPerPlan:      ns,
			AllocsPerPlan:  r.AllocsPerOp(),
			BytesPerPlan:   r.AllocedBytesPerOp(),
			AvgSearchIters: float64(iters) / float64(len(flows)),
		})
	}
	seq := float64(report.Modes[0].NsPerPlan)
	report.SpeedupParallel = seq / float64(report.Modes[1].NsPerPlan)
	report.SpeedupWarmCache = seq / float64(report.Modes[2].NsPerPlan)

	if report.Fig8Sweep, err = planBenchSweepSection(); err != nil {
		return err
	}
	if report.Contended, err = planBenchContendedSection(flows, pol, report.Modes[0].NsPerPlan); err != nil {
		return err
	}

	doc, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if path == "-" {
		if _, err := out.Write(doc); err != nil {
			return err
		}
	} else if err := os.WriteFile(path, doc, 0o644); err != nil {
		return err
	}

	fmt.Fprintf(out, "plan benchmark (%d workflows, %d map + %d reduce slots, GOMAXPROCS=%d):\n",
		len(flows), planBenchCluster.Maps, planBenchCluster.Reduces, report.GoMaxProcs)
	for _, m := range report.Modes {
		fmt.Fprintf(out, "  %-11s %10.0f plans/sec  %7d allocs/plan  %6.1f avg simulations/plan\n",
			m.Name, m.PlansPerSec, m.AllocsPerPlan, m.AvgSearchIters)
	}
	fmt.Fprintf(out, "  speedup: parallel %.2fx, warm cache %.2fx (vs sequential)\n",
		report.SpeedupParallel, report.SpeedupWarmCache)
	sw := report.Fig8Sweep
	fmt.Fprintf(out, "  fig8 sweep (%d cells, %d WOHA, %d passes): shared planner %.2fx vs per-cell; "+
		"%d plans = %d simulated + %d hits + %d coalesced, %d duplicate fills; "+
		"figures identical %v; first row streamed after %d/%d cells\n",
		sw.Cells, sw.WohaCells, sw.Passes, sw.SpeedupShared,
		sw.PlansServed, sw.DistinctKeysSimulated, sw.CacheHits, sw.Coalesced, sw.DuplicateFills,
		sw.FiguresByteIdentical, sw.CellsDoneAtFirstRow, sw.Cells)
	fmt.Fprintf(out, "  contended (%d goroutines on one warm planner): %.0f plans/sec, %.2fx vs sequential generation, %d duplicate fills\n",
		report.Contended.Goroutines, report.Contended.PlansPerSec,
		report.Contended.SpeedupVsSequential, report.Contended.DuplicateFills)
	if path != "-" {
		fmt.Fprintf(out, "report written to %s\n", path)
	}
	return nil
}

// planBenchSweepSection compares the 18-cell Fig 8 corpus planned per-cell
// (the seed behavior) against one shared coalescing planner. The timing runs
// two passes over the corpus — planning the sweep and re-planning it, as a
// repeated experiment, parity run, or recurring workload does — because this
// corpus's keys are all distinct within a single pass, so the first pass must
// simulate every key either way and the re-serve is where sharing pays. It
// then replays the actual figure sweep through a fresh shared planner to
// check byte-identical figures and that the first figure row streamed out
// while later cells were still pending.
func planBenchSweepSection() (planBenchSweep, error) {
	s := planBenchSweep{Passes: 2}
	base := experiments.DefaultFig8Config()

	// planPass generates every WOHA cell's plans once.
	planPass := func(cfg experiments.Fig8Config) (cells, woha int, d time.Duration, err error) {
		cs, err := experiments.Fig8Cells(cfg)
		if err != nil {
			return 0, 0, 0, err
		}
		t0 := time.Now()
		for _, c := range cs {
			if c.Plans == nil {
				continue
			}
			woha++
			if _, err := c.Plans(); err != nil {
				return 0, 0, 0, err
			}
		}
		return len(cs), woha, time.Since(t0), nil
	}

	var perCell, shared time.Duration
	for i := 0; i < s.Passes; i++ {
		var d time.Duration
		var err error
		if s.Cells, s.WohaCells, d, err = planPass(base); err != nil {
			return s, err
		}
		perCell += d
	}
	o := obs.New(obs.NewRegistry(), nil)
	cfg := base
	cfg.Planner = planner.New(planner.Config{CacheSize: 4096, Margin: base.Margin, Obs: o})
	for i := 0; i < s.Passes; i++ {
		_, _, d, err := planPass(cfg)
		if err != nil {
			return s, err
		}
		shared += d
	}
	s.PerCellPlanNs, s.SharedPlanNs = perCell.Nanoseconds(), shared.Nanoseconds()
	if s.SharedPlanNs > 0 {
		s.SpeedupShared = float64(s.PerCellPlanNs) / float64(s.SharedPlanNs)
	}
	st := cfg.Planner.Stats()
	s.PlansServed = st.Plans.Value()
	s.DistinctKeysSimulated = st.CacheMisses.Value()
	s.CacheHits = st.CacheHits.Value()
	s.Coalesced = st.Coalesced.Value()
	s.DuplicateFills = st.DuplicateFills.Value()

	// Figure replay: per-cell baseline vs a streamed shared-planner sweep.
	renderAll := func(r *experiments.Fig8Result) (string, error) {
		var sb strings.Builder
		for _, t := range []*experiments.Table{r.MissTable(), r.MaxTardTable(), r.TotalTardTable()} {
			if err := t.Render(&sb); err != nil {
				return "", err
			}
		}
		return sb.String(), nil
	}
	direct, err := experiments.Fig8(base)
	if err != nil {
		return s, err
	}
	reg := obs.NewRegistry()
	run := base
	run.Obs = obs.New(reg, nil)
	run.Planner = planner.New(planner.Config{CacheSize: 4096, Margin: base.Margin, Obs: run.Obs})
	cellsDone := reg.Counter(obs.MetricRunnerCells, "Scenario cells executed by the runner.")
	first := true
	sharedRes, err := experiments.Fig8Each(run, func(experiments.Fig8Row) error {
		if first {
			s.CellsDoneAtFirstRow = cellsDone.Value()
			first = false
		}
		return nil
	})
	if err != nil {
		return s, err
	}
	s.FirstRowBeforeLastCell = !first && s.CellsDoneAtFirstRow < int64(s.Cells)
	dTables, err := renderAll(direct)
	if err != nil {
		return s, err
	}
	sTables, err := renderAll(sharedRes)
	if err != nil {
		return s, err
	}
	s.FiguresByteIdentical = dTables == sTables
	return s, nil
}

// planBenchContendedSection hammers one warm shared planner from many
// goroutines requesting colliding keys: every request is served through the
// cache mutex, so this is the worst case for lock contention erasing the
// cache win. sequentialNs is the uncached generation cost the speedup is
// measured against.
func planBenchContendedSection(flows []*workflow.Workflow, pol priority.Policy, sequentialNs int64) (planBenchContended, error) {
	c := planBenchContended{Goroutines: 64}
	o := obs.New(obs.NewRegistry(), nil)
	pl := planner.New(planner.Config{CacheSize: 2 * len(flows), Margin: planner.DefaultMargin, Obs: o})
	for _, w := range flows {
		if _, err := pl.Plan(w, planBenchCluster, pol); err != nil {
			return c, fmt.Errorf("warming contended planner: %w", err)
		}
	}
	var benchErr error
	var once sync.Once
	r := testing.Benchmark(func(b *testing.B) {
		procs := runtime.GOMAXPROCS(0)
		b.SetParallelism((c.Goroutines + procs - 1) / procs)
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(next.Add(1)) - 1
				if _, err := pl.Plan(flows[i%len(flows)], planBenchCluster, pol); err != nil {
					once.Do(func() { benchErr = err })
					return
				}
			}
		})
	})
	if benchErr != nil {
		return c, benchErr
	}
	c.NsPerPlan = r.NsPerOp()
	if c.NsPerPlan > 0 {
		c.PlansPerSec = 1e9 / float64(c.NsPerPlan)
		c.SpeedupVsSequential = float64(sequentialNs) / float64(c.NsPerPlan)
	}
	c.DuplicateFills = pl.Stats().DuplicateFills.Value()
	return c, nil
}
