package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
	"repro/internal/workload"
)

// The -bench-out mode measures workflow-admission throughput: how fast the
// planner subsystem turns workflows into resource-capped scheduling plans.
// It drives the Yahoo-derived 61-workflow population plus the Fig 7 topology
// through three planner configurations — the seed-equivalent sequential
// path, the speculative parallel search, and a warm structural cache — and
// writes the numbers as JSON so runs are comparable across commits.

// planBenchReport is the JSON document -bench-out writes.
type planBenchReport struct {
	// GoMaxProcs records the core budget: parallel-search speedup is
	// bounded by it (on a single-core host expect ~1x from parallelism,
	// with cache and pooling wins unaffected).
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`
	Corpus     struct {
		Workflows   int     `json:"workflows"`
		ClusterMaps int     `json:"cluster_map_slots"`
		ClusterReds int     `json:"cluster_reduce_slots"`
		Policy      string  `json:"policy"`
		Margin      float64 `json:"margin"`
	} `json:"corpus"`
	Modes []planBenchMode `json:"modes"`
	// Speedups are sequential ns/plan divided by the mode's ns/plan.
	SpeedupParallel  float64 `json:"speedup_parallel_x"`
	SpeedupWarmCache float64 `json:"speedup_warm_cache_x"`
}

type planBenchMode struct {
	Name           string  `json:"name"`
	PlansPerSec    float64 `json:"plans_per_sec"`
	NsPerPlan      int64   `json:"ns_per_plan"`
	AllocsPerPlan  int64   `json:"allocs_per_plan"`
	BytesPerPlan   int64   `json:"bytes_per_plan"`
	AvgSearchIters float64 `json:"avg_search_iters"`
}

var planBenchCluster = plan.Caps{Maps: 300, Reduces: 180}

func planBenchCorpus() ([]*workflow.Workflow, error) {
	flows, err := workload.Yahoo(workload.DefaultYahooConfig())
	if err != nil {
		return nil, err
	}
	flows = append(flows, workload.Fig7("fig7", 1.0, simtime.Epoch, simtime.Epoch.Add(45*time.Minute)))
	return flows, nil
}

// runPlanBench measures the three configurations and writes the JSON report
// to path ("-" for stdout), echoing a summary table to out.
func runPlanBench(path string, out io.Writer) error {
	flows, err := planBenchCorpus()
	if err != nil {
		return err
	}
	pol := priority.HLF{}

	var report planBenchReport
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.GoVersion = runtime.Version()
	report.Corpus.Workflows = len(flows)
	report.Corpus.ClusterMaps = planBenchCluster.Maps
	report.Corpus.ClusterReds = planBenchCluster.Reduces
	report.Corpus.Policy = pol.Name()
	report.Corpus.Margin = planner.DefaultMargin

	modes := []struct {
		name string
		mk   func() *planner.Planner
		warm bool
	}{
		{"sequential", func() *planner.Planner { return planner.New(planner.Config{}) }, false},
		{"parallel", func() *planner.Planner {
			return planner.New(planner.Config{Workers: runtime.GOMAXPROCS(0)})
		}, false},
		{"warm-cache", func() *planner.Planner {
			return planner.New(planner.Config{Workers: runtime.GOMAXPROCS(0), CacheSize: 2 * len(flows)})
		}, true},
	}
	for _, m := range modes {
		pl := m.mk()
		if m.warm {
			for _, w := range flows {
				if _, err := pl.Plan(w, planBenchCluster, pol); err != nil {
					return fmt.Errorf("warming %s: %w", m.name, err)
				}
			}
		}
		// Average SearchIters over one full corpus pass (cache hits report
		// 0: they run no simulations).
		var iters int
		for _, w := range flows {
			p, err := pl.Plan(w, planBenchCluster, pol)
			if err != nil {
				return fmt.Errorf("%s: planning %s: %w", m.name, w.Name, err)
			}
			iters += p.SearchIters
		}

		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pl.Plan(flows[i%len(flows)], planBenchCluster, pol); err != nil {
					b.Fatalf("Plan: %v", err)
				}
			}
		})
		ns := r.NsPerOp()
		report.Modes = append(report.Modes, planBenchMode{
			Name:           m.name,
			PlansPerSec:    1e9 / float64(ns),
			NsPerPlan:      ns,
			AllocsPerPlan:  r.AllocsPerOp(),
			BytesPerPlan:   r.AllocedBytesPerOp(),
			AvgSearchIters: float64(iters) / float64(len(flows)),
		})
	}
	seq := float64(report.Modes[0].NsPerPlan)
	report.SpeedupParallel = seq / float64(report.Modes[1].NsPerPlan)
	report.SpeedupWarmCache = seq / float64(report.Modes[2].NsPerPlan)

	doc, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if path == "-" {
		if _, err := out.Write(doc); err != nil {
			return err
		}
	} else if err := os.WriteFile(path, doc, 0o644); err != nil {
		return err
	}

	fmt.Fprintf(out, "plan benchmark (%d workflows, %d map + %d reduce slots, GOMAXPROCS=%d):\n",
		len(flows), planBenchCluster.Maps, planBenchCluster.Reduces, report.GoMaxProcs)
	for _, m := range report.Modes {
		fmt.Fprintf(out, "  %-11s %10.0f plans/sec  %7d allocs/plan  %6.1f avg simulations/plan\n",
			m.Name, m.PlansPerSec, m.AllocsPerPlan, m.AvgSearchIters)
	}
	fmt.Fprintf(out, "  speedup: parallel %.2fx, warm cache %.2fx (vs sequential)\n",
		report.SpeedupParallel, report.SpeedupWarmCache)
	if path != "-" {
		fmt.Fprintf(out, "report written to %s\n", path)
	}
	return nil
}
