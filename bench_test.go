// Benchmarks regenerating every figure of the WOHA paper's evaluation.
// Each BenchmarkFigN measures the wall cost of reproducing that figure and
// reports the figure's headline numbers as custom benchmark metrics, so
// `go test -bench=. -benchmem` prints the same series the paper plots.
// EXPERIMENTS.md records the paper-vs-measured comparison.
package woha_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/experiments"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// BenchmarkFig2 regenerates the resource-cap motivating example.
func BenchmarkFig2(b *testing.B) {
	var last *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.UncappedMisses), "uncapped-misses")
	b.ReportMetric(float64(last.CappedMisses), "capped-misses")
}

// BenchmarkFig3 regenerates the progress-requirement change-interval
// histogram.
func BenchmarkFig3(b *testing.B) {
	var last *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(experiments.DefaultFig3Config())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Histogram.FractionAbove(4), "frac>10s")
	b.ReportMetric(last.Histogram.FractionAbove(2), "frac>100ms")
	b.ReportMetric(float64(last.Histogram.Total()), "intervals")
}

// BenchmarkFig5Fig6 regenerates the trace-statistics CDFs.
func BenchmarkFig5Fig6(b *testing.B) {
	var last *experiments.Fig56Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig56(experiments.DefaultFig56Config())
	}
	b.ReportMetric(last.MapTime.P(100)-last.MapTime.P(10), "maps-in-10s-100s")
	b.ReportMetric(1-last.ReduceTime.P(100), "reduces>100s")
	b.ReportMetric(1-last.ReduceTime.P(1000), "reduces>1000s")
	b.ReportMetric(1-last.MapCount.P(100), "jobs>100maps")
	b.ReportMetric(last.ReduceCount.P(9.5), "jobs<10reduces")
}

// benchmarkFig8At regenerates one cluster-size column of Fig 8/9/10 for one
// scheduler and reports its miss ratio and tardiness.
func benchmarkFig8At(b *testing.B, schedName string, size int) {
	cfg := experiments.DefaultFig8Config()
	cfg.Sizes = []int{size}
	var last *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MissRatio[schedName][0], "miss-ratio")
	b.ReportMetric(last.MaxTard[schedName][0].Seconds(), "max-tard-s")
	b.ReportMetric(last.TotalTard[schedName][0].Seconds(), "total-tard-s")
}

// BenchmarkFig8 regenerates the Fig 8/9/10 grid: deadline violation ratio,
// max tardiness, and total tardiness per scheduler and cluster size.
func BenchmarkFig8(b *testing.B) {
	for _, spec := range experiments.AllSchedulers() {
		for _, size := range experiments.DefaultFig8Config().Sizes {
			b.Run(fmt.Sprintf("%s/%dm-%dr", spec.Name, size, size), func(b *testing.B) {
				benchmarkFig8At(b, spec.Name, size)
			})
		}
	}
}

// BenchmarkFig11 regenerates the synthetic-workflow workspan experiment and
// reports each workflow's workspan plus the scheduler's miss count.
func BenchmarkFig11(b *testing.B) {
	for _, spec := range experiments.AllSchedulers() {
		b.Run(spec.Name, func(b *testing.B) {
			cfg := experiments.DefaultFig11Config()
			var last *cluster.Result
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunScenarioMargin(cfg.Cluster(), cfg.Flows(), mustSpec(b, spec.Name), cfg.Seed, nil, cfg.Margin)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			for i, w := range last.Workflows {
				b.ReportMetric(w.Workspan.Seconds(), fmt.Sprintf("W%d-workspan-s", i+1))
			}
			b.ReportMetric(float64(last.DeadlineMisses()), "misses")
		})
	}
}

// BenchmarkFig12 regenerates the utilization experiment (3 recurrences).
func BenchmarkFig12(b *testing.B) {
	for _, spec := range experiments.AllSchedulers() {
		b.Run(spec.Name, func(b *testing.B) {
			cfg := experiments.DefaultFig11Config()
			cfg.Recurrences = 3
			var last *cluster.Result
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunScenarioMargin(cfg.Cluster(), cfg.Flows(), mustSpec(b, spec.Name), cfg.Seed, nil, cfg.Margin)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Utilization(), "utilization")
		})
	}
}

func mustSpec(b *testing.B, name string) experiments.SchedulerSpec {
	b.Helper()
	spec, err := experiments.SchedulerByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

// BenchmarkFig13a measures AssignTask cost per queue backend and queue
// length — the paper's scheduler-throughput scalability figure, as a true
// testing.B microbenchmark (throughput = 1/(ns/op)).
func BenchmarkFig13a(b *testing.B) {
	backends := []struct {
		name string
		mk   func() dsl.Queue
	}{
		{"DSL", func() dsl.Queue { return dsl.New(1) }},
		{"BST", func() dsl.Queue { return dsl.NewBST() }},
		{"Naive", func() dsl.Queue { return dsl.NewNaive() }},
	}
	for _, be := range backends {
		for _, n := range []int{100, 1000, 10000, 100000} {
			if be.name == "Naive" && n > 10000 {
				continue // hours of wall time; the collapse is visible at 10k
			}
			b.Run(fmt.Sprintf("%s/queue=%d", be.name, n), func(b *testing.B) {
				q := be.mk()
				fillQueue(q, n)
				now := simtime.Epoch
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					now = now.Add(5 * time.Millisecond)
					e, ok := q.Best(now)
					if !ok {
						b.Fatal("queue drained")
					}
					q.Scheduled(e.ID, now)
				}
			})
		}
	}
}

func fillQueue(q dsl.Queue, n int) {
	for i := 0; i < n; i++ {
		ttd := time.Duration(200+i%1800) * time.Second
		reqs := []plan.Req{
			{TTD: ttd, Cum: 10},
			{TTD: ttd / 2, Cum: 50},
			{TTD: ttd / 4, Cum: 90},
		}
		deadline := simtime.FromSeconds(float64(600 + (i*7919)%100000))
		q.Add(dsl.NewEntry(i, deadline, reqs), 0)
	}
}

// BenchmarkFig13b measures plan generation and reports the plan-size
// series: maximum encoded size over a population reaching 1400+ tasks.
func BenchmarkFig13b(b *testing.B) {
	var last *experiments.Fig13bResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13b(experiments.DefaultFig13bConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.MaxBytes()), "max-plan-bytes")
}

// BenchmarkTimelines regenerates the Fig 14-19 slot-allocation series
// (the full six-scheduler run with observers attached).
func BenchmarkTimelines(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(experiments.DefaultFig11Config())
		if err != nil {
			b.Fatal(err)
		}
		rows = 0
		for _, tl := range res.Timelines {
			rows += len(tl.Series(0, cluster.MapSlot))
		}
	}
	b.ReportMetric(float64(rows), "series-points")
}

// --- Ablation benches for the design choices DESIGN.md calls out. ---

// ablationScenario runs the Fig 11 workload under WOHA-LPF with tweaks.
func ablationScenario(b *testing.B, margin float64, mutate func(*cluster.Config)) *cluster.Result {
	b.Helper()
	cfg := experiments.DefaultFig11Config()
	cc := cfg.Cluster()
	if mutate != nil {
		mutate(&cc)
	}
	spec := mustSpec(b, "WOHA-LPF")
	res, err := experiments.RunScenarioMargin(cc, cfg.Flows(), spec, cfg.Seed, nil, margin)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationPlanMargin sweeps the plan safety margin: 1.0 is the
// paper-literal minimum cap; smaller margins buy slack against the
// single-pool model's optimism.
func BenchmarkAblationPlanMargin(b *testing.B) {
	for _, margin := range []float64{1.0, 0.95, 0.85, 0.7} {
		b.Run(fmt.Sprintf("margin=%.2f", margin), func(b *testing.B) {
			var last *cluster.Result
			for i := 0; i < b.N; i++ {
				last = ablationScenario(b, margin, nil)
			}
			b.ReportMetric(float64(last.DeadlineMisses()), "misses")
			b.ReportMetric(last.TotalTardiness().Seconds(), "total-tard-s")
		})
	}
}

// BenchmarkAblationSubmitterOverhead sweeps the modeled cost of WOHA's
// map-only submitter job (jar loading + task init per wjob activation).
func BenchmarkAblationSubmitterOverhead(b *testing.B) {
	for _, overhead := range []time.Duration{0, 2 * time.Second, 10 * time.Second, 30 * time.Second} {
		b.Run(fmt.Sprintf("overhead=%s", overhead), func(b *testing.B) {
			var last *cluster.Result
			for i := 0; i < b.N; i++ {
				last = ablationScenario(b, experiments.PlanMargin, func(cc *cluster.Config) {
					cc.SubmitterOverhead = overhead
				})
			}
			b.ReportMetric(float64(last.DeadlineMisses()), "misses")
			b.ReportMetric(last.Makespan.Seconds(), "makespan-s")
		})
	}
}

// BenchmarkAblationHeartbeat compares instant dispatch against
// heartbeat-driven dispatch at Hadoop's default 3s interval and beyond.
func BenchmarkAblationHeartbeat(b *testing.B) {
	for _, hb := range []time.Duration{0, 3 * time.Second, 10 * time.Second} {
		b.Run(fmt.Sprintf("heartbeat=%s", hb), func(b *testing.B) {
			var last *cluster.Result
			for i := 0; i < b.N; i++ {
				last = ablationScenario(b, experiments.PlanMargin, func(cc *cluster.Config) {
					cc.HeartbeatInterval = hb
				})
			}
			b.ReportMetric(float64(last.DeadlineMisses()), "misses")
			b.ReportMetric(last.Makespan.Seconds(), "makespan-s")
		})
	}
}

// BenchmarkAblationNoise sweeps task-duration estimation error, probing the
// paper's claim that F_i is "just a rough estimation" and the scheduler
// tolerates inaccuracy.
func BenchmarkAblationNoise(b *testing.B) {
	for _, noise := range []float64{0, 0.1, 0.3, 0.5} {
		b.Run(fmt.Sprintf("noise=%.1f", noise), func(b *testing.B) {
			var last *cluster.Result
			for i := 0; i < b.N; i++ {
				last = ablationScenario(b, experiments.PlanMargin, func(cc *cluster.Config) {
					cc.Noise = noise
					cc.Seed = 42
				})
			}
			b.ReportMetric(float64(last.DeadlineMisses()), "misses")
		})
	}
}

func newStrictableWOHA(strict bool) cluster.Policy {
	return core.NewScheduler(core.Options{Seed: 1, Strict: strict, PolicyName: "LPF"})
}

// BenchmarkAblationWorkConservation compares the paper's work-conserving
// scheduler against strict most-lagging-only scheduling.
func BenchmarkAblationWorkConservation(b *testing.B) {
	run := func(b *testing.B, strict bool) *cluster.Result {
		cfg := experiments.DefaultFig11Config()
		pol := newStrictableWOHA(strict)
		sim, err := cluster.New(cfg.Cluster(), pol, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range cfg.Flows() {
			p, err := plan.GenerateCappedTyped(w,
				plan.Caps{Maps: cfg.Cluster().MapSlots(), Reduces: cfg.Cluster().ReduceSlots()},
				priority.LPF{}, experiments.PlanMargin)
			if err != nil {
				b.Fatal(err)
			}
			if err := sim.Submit(w, p); err != nil {
				b.Fatal(err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	for _, strict := range []bool{false, true} {
		b.Run(fmt.Sprintf("strict=%v", strict), func(b *testing.B) {
			var last *cluster.Result
			for i := 0; i < b.N; i++ {
				last = run(b, strict)
			}
			b.ReportMetric(float64(last.DeadlineMisses()), "misses")
			b.ReportMetric(last.Makespan.Seconds(), "makespan-s")
		})
	}
}

// BenchmarkAblationDeadlineScheme compares the SLA-cohort deadline scheme
// against per-workflow stretch deadlines on the Yahoo workload.
func BenchmarkAblationDeadlineScheme(b *testing.B) {
	schemes := []struct {
		name   string
		scheme workload.DeadlineScheme
	}{
		{"SLA", workload.DeadlineSLA},
		{"Stretch", workload.DeadlineStretch},
	}
	for _, sc := range schemes {
		b.Run(sc.name, func(b *testing.B) {
			cfg := experiments.DefaultFig8Config()
			cfg.Yahoo.Scheme = sc.scheme
			cfg.Sizes = []int{240}
			var last *experiments.Fig8Result
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig8(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.MissRatio["WOHA-LPF"][0], "woha-lpf-miss")
			b.ReportMetric(last.MissRatio["EDF"][0], "edf-miss")
		})
	}
}

// BenchmarkAblationNormalizedLag compares the paper's absolute-lag priority
// against the normalized (relative-progress) extension on the Yahoo
// workload under stretch deadlines, where task-count heterogeneity bites
// hardest: misses stay equal but total tardiness drops 15-25%.
func BenchmarkAblationNormalizedLag(b *testing.B) {
	for _, normalized := range []bool{false, true} {
		b.Run(fmt.Sprintf("normalized=%v", normalized), func(b *testing.B) {
			var last *cluster.Result
			for i := 0; i < b.N; i++ {
				ycfg := workload.DefaultYahooConfig()
				ycfg.Scheme = workload.DeadlineStretch
				flows, err := workload.Yahoo(ycfg)
				if err != nil {
					b.Fatal(err)
				}
				multi := workload.MultiJob(flows)
				cc := cluster.Config{Nodes: 120, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2, Seed: 1}
				pol := core.NewScheduler(core.Options{Seed: 1, PolicyName: "LPF", NormalizedLag: normalized})
				sim, err := cluster.New(cc, pol, nil)
				if err != nil {
					b.Fatal(err)
				}
				for _, w := range multi {
					p, err := plan.GenerateCappedTyped(w,
						plan.Caps{Maps: cc.MapSlots(), Reduces: cc.ReduceSlots()},
						priority.LPF{}, experiments.PlanMargin)
					if err != nil {
						b.Fatal(err)
					}
					if err := sim.Submit(w, p); err != nil {
						b.Fatal(err)
					}
				}
				res, err := sim.Run()
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.MissRatio(), "miss-ratio")
			b.ReportMetric(last.TotalTardiness().Seconds(), "total-tard-s")
		})
	}
}

// BenchmarkAblationLocality sweeps the data-locality model on the Fig 11
// scenario: remote-read penalties without and with delay scheduling.
func BenchmarkAblationLocality(b *testing.B) {
	variants := []struct {
		name string
		mut  func(*cluster.Config)
	}{
		{"off", nil},
		{"r3-penalty1.3", func(c *cluster.Config) { c.Replication = 3; c.RemotePenalty = 1.3 }},
		{"r3-penalty1.3-delay5s", func(c *cluster.Config) {
			c.Replication = 3
			c.RemotePenalty = 1.3
			c.DelayScheduling = 5 * time.Second
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var last *cluster.Result
			for i := 0; i < b.N; i++ {
				last = ablationScenario(b, experiments.PlanMargin, v.mut)
			}
			b.ReportMetric(float64(last.DeadlineMisses()), "misses")
			b.ReportMetric(last.Makespan.Seconds(), "makespan-s")
			if tot := last.LocalMaps + last.RemoteMaps; tot > 0 {
				b.ReportMetric(float64(last.LocalMaps)/float64(tot), "local-frac")
			}
		})
	}
}

// BenchmarkAblationFailures measures deadline degradation under node
// failure storms on the Fig 11 scenario.
func BenchmarkAblationFailures(b *testing.B) {
	for _, failed := range []int{0, 2, 6} {
		b.Run(fmt.Sprintf("failed-nodes=%d", failed), func(b *testing.B) {
			var last *cluster.Result
			for i := 0; i < b.N; i++ {
				last = ablationScenario(b, experiments.PlanMargin, func(c *cluster.Config) {
					for n := 0; n < failed; n++ {
						c.Failures = append(c.Failures, cluster.Failure{
							Node:     n,
							At:       simtime.FromSeconds(float64(600 + 300*n)),
							Downtime: 10 * time.Minute,
						})
					}
				})
			}
			b.ReportMetric(float64(last.DeadlineMisses()), "misses")
			b.ReportMetric(float64(last.TasksStarted), "task-attempts")
		})
	}
}
